"""Pluggable RTT datasets: where a deployment's latency matrix comes from.

The seed hard-coded the paper's Table 2 matrix (``paper_latency_table``)
inside every experiment.  This module lifts that choice behind a small
interface so a scenario config can pick its world:

* :class:`PaperRttDataset` — the paper's five evaluation regions plus the
  two Figure-1 global-table replicas; byte-identical to the seed matrix.
* :class:`SyntheticGeoRttDataset` — N synthetic regions with seeded
  latitude/longitude, RTT derived from great-circle distance.  This is
  what the 10–50-region routing sweep runs on.
* :class:`MatrixFileRttDataset` — an external JSON matrix file, for
  plugging in real measurement campaigns.

``resolve_rtt_dataset`` maps the scenario-config reference form (a string
or a small dict) onto one of these; topology building calls
``latency_table()`` exactly once per deployment.
"""

from __future__ import annotations

import json
import math
import random
from typing import Any, Dict, List, Optional, Tuple, Union

from .network import LatencyTable, Region, paper_latency_table

__all__ = [
    "RttDataset",
    "PaperRttDataset",
    "SyntheticGeoRttDataset",
    "MatrixFileRttDataset",
    "RttDatasetError",
    "resolve_rtt_dataset",
]


class RttDatasetError(ValueError):
    """A dataset reference or matrix file is malformed."""


class RttDataset:
    """A named source of a pairwise RTT matrix over named regions.

    Subclasses fill in :meth:`latency_table`, :meth:`region_names`, and
    :attr:`primary_region`; everything downstream (topology building, the
    routing sweep) works only through this surface.
    """

    #: Short identifier used in configs and result payloads.
    name: str = "abstract"

    def latency_table(self) -> LatencyTable:
        raise NotImplementedError

    def region_names(self) -> Tuple[str, ...]:
        """All regions the matrix covers, in a deterministic order."""
        raise NotImplementedError

    @property
    def primary_region(self) -> str:
        """The region that hosts primary storage for this dataset."""
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-shaped provenance blob for result payloads."""
        return {"name": self.name, "primary": self.primary_region}


class PaperRttDataset(RttDataset):
    """The paper's Table 2 matrix — the seed's world, verbatim."""

    name = "paper"

    def __init__(self, intra_rtt: float = 7.0):
        self.intra_rtt = intra_rtt

    def latency_table(self) -> LatencyTable:
        return paper_latency_table(intra_rtt=self.intra_rtt)

    def region_names(self) -> Tuple[str, ...]:
        return Region.ALL

    @property
    def primary_region(self) -> str:
        return Region.VA


_EARTH_RADIUS_KM = 6371.0
#: Effective propagation speed over real WAN paths (~2/3 c in fibre, plus
#: routing indirection) — roughly 100 km per ms of RTT, which puts the
#: synthetic matrix in the same range as the paper's measured Table 2.
_KM_PER_RTT_MS = 100.0


def _great_circle_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    h = (
        math.sin((lat2 - lat1) / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


class SyntheticGeoRttDataset(RttDataset):
    """``n`` synthetic regions with seeded coordinates and great-circle RTT.

    Region names are ``g00 .. gNN``.  Coordinates are drawn from a private
    ``random.Random(seed)`` so the matrix is fully determined by
    ``(n, seed)`` — two deployments built from the same pair see the same
    world.  The primary is the region with the lowest mean RTT to the rest
    (the most "central" one), which is where an operator would put the
    primary copy.
    """

    name = "synthetic-geo"

    def __init__(self, n: int, seed: int = 42, intra_rtt: float = 7.0, min_rtt: float = 2.0):
        if n < 2:
            raise RttDatasetError(f"synthetic-geo needs at least 2 regions, got {n}")
        if n > 512:
            raise RttDatasetError(f"synthetic-geo caps at 512 regions, got {n}")
        self.n = n
        self.seed = seed
        self.intra_rtt = intra_rtt
        self.min_rtt = min_rtt
        # str seeds go through hashlib inside random.Random, so the stream
        # is stable across processes regardless of PYTHONHASHSEED.
        rng = random.Random(f"synthetic-geo:{seed}:{n}")
        # Latitudes clipped to inhabited bands; longitude free.
        self.coords: Dict[str, Tuple[float, float]] = {}
        for i in range(n):
            name = f"g{i:02d}"
            lat = rng.uniform(-55.0, 65.0)
            lon = rng.uniform(-180.0, 180.0)
            self.coords[name] = (lat, lon)
        self._names: Tuple[str, ...] = tuple(sorted(self.coords))
        self._rtts: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(self._names):
            for b in self._names[i + 1 :]:
                km = _great_circle_km(self.coords[a], self.coords[b])
                self._rtts[(a, b)] = max(self.min_rtt, round(km / _KM_PER_RTT_MS, 3))
        # Primary = most central region (lowest mean RTT to every other).
        def mean_rtt(r: str) -> float:
            return sum(self.rtt(r, o) for o in self._names if o != r) / (n - 1)

        self._primary = min(self._names, key=lambda r: (mean_rtt(r), r))

    def rtt(self, a: str, b: str) -> float:
        if a == b:
            return self.intra_rtt
        return self._rtts.get((a, b)) or self._rtts[(b, a)]

    def latency_table(self) -> LatencyTable:
        return LatencyTable(dict(self._rtts), intra_rtt=self.intra_rtt)

    def region_names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def primary_region(self) -> str:
        return self._primary

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n": self.n,
            "seed": self.seed,
            "primary": self.primary_region,
        }


class MatrixFileRttDataset(RttDataset):
    """An RTT matrix loaded from a JSON file.

    Expected shape::

        {
          "primary": "va",
          "intra_rtt": 7.0,              // optional, default 7.0
          "rtts": {"va:ca": 74.0, ...}   // "<a>:<b>" keys, symmetric
        }
    """

    name = "matrix-file"

    def __init__(self, path: str):
        self.path = path
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            raise RttDatasetError(f"RTT matrix file not found: {path!r}") from None
        except json.JSONDecodeError as exc:
            raise RttDatasetError(f"RTT matrix file {path!r} is not valid JSON: {exc}") from None
        if not isinstance(raw, dict) or "rtts" not in raw or "primary" not in raw:
            raise RttDatasetError(
                f"RTT matrix file {path!r} must be an object with 'primary' and 'rtts' keys"
            )
        self.intra_rtt = float(raw.get("intra_rtt", 7.0))
        self._rtts: Dict[Tuple[str, str], float] = {}
        for key, value in raw["rtts"].items():
            parts = key.split(":")
            if len(parts) != 2 or not parts[0] or not parts[1]:
                raise RttDatasetError(
                    f"RTT matrix file {path!r}: bad pair key {key!r} (want '<a>:<b>')"
                )
            try:
                ms = float(value)
            except (TypeError, ValueError):
                raise RttDatasetError(
                    f"RTT matrix file {path!r}: RTT for {key!r} is not a number: {value!r}"
                ) from None
            if ms <= 0:
                raise RttDatasetError(
                    f"RTT matrix file {path!r}: non-positive RTT for {key!r}: {ms}"
                )
            self._rtts[(parts[0], parts[1])] = ms
        names = sorted({r for pair in self._rtts for r in pair})
        self._primary = raw["primary"]
        if self._primary not in names:
            raise RttDatasetError(
                f"RTT matrix file {path!r}: primary {self._primary!r} not in matrix "
                f"(regions: {', '.join(names)})"
            )
        self._names: Tuple[str, ...] = tuple(names)

    def latency_table(self) -> LatencyTable:
        return LatencyTable(dict(self._rtts), intra_rtt=self.intra_rtt)

    def region_names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def primary_region(self) -> str:
        return self._primary

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "path": self.path, "primary": self.primary_region}


RttDatasetRef = Union[str, Dict[str, Any], RttDataset, None]


def resolve_rtt_dataset(ref: RttDatasetRef) -> RttDataset:
    """Turn a scenario-config RTT reference into a concrete dataset.

    Accepted forms::

        None | "paper"                          -> PaperRttDataset()
        {"kind": "paper"}                       -> PaperRttDataset()
        {"kind": "synthetic-geo", "n": 25,
         "seed": 42}                            -> SyntheticGeoRttDataset(25, 42)
        {"kind": "matrix-file", "path": "..."}  -> MatrixFileRttDataset(path)
        an RttDataset instance                  -> itself
    """
    if ref is None or ref == "paper":
        return PaperRttDataset()
    if isinstance(ref, RttDataset):
        return ref
    if isinstance(ref, str):
        raise RttDatasetError(
            f"unknown RTT dataset {ref!r} (string form only accepts 'paper'; "
            "use {'kind': 'synthetic-geo', ...} or {'kind': 'matrix-file', ...})"
        )
    if not isinstance(ref, dict):
        raise RttDatasetError(f"bad RTT dataset reference: {ref!r}")
    kind = ref.get("kind")
    known = {"paper", "synthetic-geo", "matrix-file"}
    if kind not in known:
        raise RttDatasetError(
            f"unknown RTT dataset kind {kind!r} (available: {', '.join(sorted(known))})"
        )
    extra = set(ref) - {"kind", "n", "seed", "intra_rtt", "min_rtt", "path"}
    if extra:
        raise RttDatasetError(
            f"unknown keys in RTT dataset reference: {', '.join(sorted(extra))}"
        )
    if kind == "paper":
        return PaperRttDataset(intra_rtt=float(ref.get("intra_rtt", 7.0)))
    if kind == "synthetic-geo":
        if "n" not in ref:
            raise RttDatasetError("synthetic-geo RTT dataset needs 'n' (region count)")
        try:
            n = int(ref["n"])
        except (TypeError, ValueError):
            raise RttDatasetError(
                f"synthetic-geo 'n' must be an integer, got {ref['n']!r}"
            ) from None
        return SyntheticGeoRttDataset(
            n,
            seed=int(ref.get("seed", 42)),
            intra_rtt=float(ref.get("intra_rtt", 7.0)),
            min_rtt=float(ref.get("min_rtt", 2.0)),
        )
    # matrix-file
    if "path" not in ref:
        raise RttDatasetError("matrix-file RTT dataset needs 'path'")
    return MatrixFileRttDataset(str(ref["path"]))
