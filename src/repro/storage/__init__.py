"""Storage substrates: primary store, caches, locks, intents, replication."""

from .cache import CacheEntry, NearUserCache
from .intents import (
    IDEM_TABLE,
    INTENT_TABLE,
    KIND_APPLY,
    KIND_REEXEC,
    IdempotencyTable,
    IntentStatus,
    IntentTable,
    WriteIntent,
)
from .kvstore import Item, KVStore, VERSION_ABSENT, VERSION_MISS, WriteOp
from .locks import LockManager, LockMode, LockRequest
from .replicated import QuorumClient, ReplicatedStore, Timestamp

__all__ = [
    "CacheEntry",
    "IDEM_TABLE",
    "INTENT_TABLE",
    "IdempotencyTable",
    "IntentStatus",
    "IntentTable",
    "Item",
    "KIND_APPLY",
    "KIND_REEXEC",
    "KVStore",
    "LockManager",
    "LockMode",
    "LockRequest",
    "NearUserCache",
    "QuorumClient",
    "ReplicatedStore",
    "Timestamp",
    "VERSION_ABSENT",
    "VERSION_MISS",
    "WriteIntent",
    "WriteOp",
]
