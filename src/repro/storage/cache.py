"""The near-user cache: eventually consistent, possibly stale, never trusted.

Each near-user location runs one of these (paper §3.1).  The cache needs
neither durability nor consistency: the LVI protocol validates every cached
version against the primary before a speculative result is released, and a
version mismatch ships fresh values back in the LVI response (§3.2,
"Managing caches").  A wiped cache therefore re-bootstraps gradually —
requests fail validation until the working set is re-fetched.

``persistent=True`` models the paper's implementation choice of backing the
cache with persistent storage so a restart does not cold-start it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from .fastcopy import fast_deepcopy
from .kvstore import Item, VERSION_MISS

__all__ = ["CacheEntry", "NearUserCache"]


@dataclass
class CacheEntry:
    """A cached item: possibly-stale value plus the version it came from.

    ``absent=True`` caches the knowledge that the primary had no such key
    (at the recorded version, always 0), so reads of missing keys can still
    speculate and validate.  ``installed_at`` is the virtual time the entry
    was last refreshed (0.0 for entries installed before the cache was
    bound to a simulator, e.g. build-time warming) — the hit-age metric and
    the mesh staleness analysis both read it.
    """

    value: Any
    version: int
    absent: bool = False
    installed_at: float = 0.0


class NearUserCache:
    """Per-location cache keyed by (table, key)."""

    def __init__(self, region: str, persistent: bool = False):
        self.region = region
        self.persistent = persistent
        self._entries: Dict[Tuple[str, str], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        #: Optional trace collector (set by the owning runtime).  When one
        #: is installed and enabled, hits/misses are emitted as point
        #: events in the current invocation's trace.
        self.obs = None
        #: Simulator + metrics bindings (installed by the owning runtime via
        #: :meth:`bind`).  Unbound caches timestamp entries at 0.0 and emit
        #: no hit-age samples — exactly the seed behaviour.
        self.sim = None
        self.metrics = None

    def bind(self, sim, metrics) -> None:
        """Attach the clock and metrics sink (called by the runtime)."""
        self.sim = sim
        self.metrics = metrics

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- reads -------------------------------------------------------------

    def lookup(self, table: str, key: str) -> Optional[CacheEntry]:
        """The cached entry, or ``None`` on a miss (version -1 in the LVI
        request; speculation is skipped because validation must fail)."""
        entry = self._entries.get((table, key))
        obs = self.obs
        if entry is None:
            self.misses += 1
            if obs is not None and obs.enabled:
                obs.event("cache.miss", region=self.region, table=table, key=key)
            return None
        self.hits += 1
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            age_ms = self._now() - entry.installed_at
            metrics.record_tagged("cache.hit_age_ms", age_ms, region=self.region)
            if obs is not None and obs.enabled:
                obs.event(
                    "cache.hit", region=self.region, table=table, key=key, age_ms=age_ms
                )
        elif obs is not None and obs.enabled:
            obs.event("cache.hit", region=self.region, table=table, key=key)
        return entry

    def version(self, table: str, key: str) -> int:
        """Cached version, or :data:`VERSION_MISS` if not cached."""
        entry = self._entries.get((table, key))
        return VERSION_MISS if entry is None else entry.version

    def contains(self, table: str, key: str) -> bool:
        return (table, key) in self._entries

    # -- updates -----------------------------------------------------------

    def install(self, table: str, key: str, item: Optional[Item]) -> None:
        """Install an authoritative (value, version) from an LVI response.

        ``item=None`` records that the primary has no such key.
        """
        if item is None:
            self._entries[(table, key)] = CacheEntry(
                value=None, version=0, absent=True, installed_at=self._now()
            )
        else:
            self._entries[(table, key)] = CacheEntry(
                value=item.value, version=item.version, installed_at=self._now()
            )

    def install_batch(self, fresh: Dict[Tuple[str, str], Optional[Item]]) -> None:
        """Install many authoritative items (the stale set of an LVI
        failure response, §3.2 step 8b)."""
        for (table, key), item in fresh.items():
            self.install(table, key, item)

    def apply_local_write(self, table: str, key: str, value: Any, version: int) -> None:
        """Apply a successfully-validated speculative write locally.

        Called only after the LVI request succeeds — Radical delays cache
        updates (including the version bump) until then (§3.2 step 2).
        The value is deep-copied: the cache must never alias objects a
        still-running execution could mutate.
        """
        self._entries[(table, key)] = CacheEntry(
            value=fast_deepcopy(value), version=version, installed_at=self._now()
        )

    def invalidate(self, table: str, key: str) -> None:
        """Drop one entry (next access will be a miss)."""
        self._entries.pop((table, key), None)

    def wipe(self) -> None:
        """Lose all cached state, unless the cache is persistent.

        Models a near-user location failure; correctness is unaffected
        because validation rejects whatever the cache cannot prove fresh.
        """
        if not self.persistent:
            self._entries.clear()

    def force_wipe(self) -> None:
        """Lose all state even if persistent (disk also failed)."""
        self._entries.clear()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> Optional[float]:
        total = self.hits + self.misses
        return None if total == 0 else self.hits / total

    def entries(self) -> Iterable[Tuple[Tuple[str, str], CacheEntry]]:
        return list(self._entries.items())
