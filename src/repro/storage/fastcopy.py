"""Fast deep copy for plain simulation data.

Every value that crosses a storage boundary (KVStore puts/gets, cache
snapshots, buffered speculative writes) is defensively deep-copied so no
component can mutate another's state through a shared reference.  The
stdlib ``copy.deepcopy`` pays for generality this data never uses — memo
bookkeeping for aliasing/cycles, reduce-protocol dispatch — and showed up
as one of the top entries in the kernel profile.

Application values in this reproduction are JSON-shaped: dicts, lists,
tuples, and atomic scalars.  :func:`fast_deepcopy` handles exactly those
shapes with direct recursion (no memo — acyclic by construction, and
duplicating an internal alias instead of sharing it is indistinguishable
to value-semantics readers) and falls back to ``copy.deepcopy`` for
anything else, so exotic values keep full deepcopy semantics.
"""

from __future__ import annotations

import copy
from typing import Any

__all__ = ["fast_deepcopy"]


def fast_deepcopy(x: Any) -> Any:
    """Deep-copy JSON-shaped data quickly; defer odd types to deepcopy."""
    cls = x.__class__
    if cls is dict:
        return {k: fast_deepcopy(v) for k, v in x.items()}
    if cls is list:
        return [fast_deepcopy(v) for v in x]
    if cls is str or cls is int or cls is float or cls is bool or x is None:
        return x
    if cls is tuple:
        return tuple(fast_deepcopy(v) for v in x)
    return copy.deepcopy(x)
