"""Write intents and idempotency keys, stored in primary storage (§3.4, §5.6).

A *write intent* is created by the LVI server after validation succeeds for
an execution whose write set is non-empty.  It maps the execution id to a
status and guarantees that the speculative writes made near-user eventually
reach primary storage: if the followup carrying them never arrives, a timer
fires and the function is deterministically re-executed near storage.

Intents live in their own table inside the primary KV store so they share
its durability (§3.1).  The §5.6 replicated server additionally records an
*idempotency key* per execution so a function runs at most twice overall —
at most once near-user and at most once near-storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConditionFailed, ProtocolError
from .kvstore import KVStore

__all__ = [
    "IntentStatus",
    "WriteIntent",
    "IntentTable",
    "IdempotencyTable",
    "KIND_REEXEC",
    "KIND_APPLY",
]

INTENT_TABLE = "_radical_intents"
IDEM_TABLE = "_radical_idempotency"

# Intent settlement kinds (see WriteIntent.kind).
KIND_REEXEC = "reexec"
KIND_APPLY = "apply"


class IntentStatus:
    """Lifecycle of a write intent."""

    PENDING = "pending"      # waiting for the followup (or the timer)
    COMPLETED = "completed"  # writes applied exactly once; safe to remove


@dataclass(frozen=True)
class WriteIntent:
    """One intent record as stored in the primary store.

    The function's ``args`` are stored *with* the intent: deterministic
    re-execution must be possible even after the LVI server itself crashes
    and a replacement recovers from the primary store (§5.6) — in-memory
    state cannot be relied on for replay inputs.
    """

    execution_id: str
    status: str
    function_id: str
    created_at: float
    args: tuple = ()
    #: Trace id of the originating invocation (0 = untraced).  Persisted so
    #: a replacement server's recovery re-execution can be attributed to
    #: the original request end-to-end.
    trace_id: int = 0
    #: How an orphaned PENDING intent is settled.  ``reexec`` (the single-
    #: shard protocol) re-runs the function from ``args``; ``apply`` (a
    #: cross-shard prepare) carries the already-resolved ``writes`` and is
    #: settled by consulting the coordinating shard's decision record —
    #: re-execution is impossible shard-locally, since one shard holds only
    #: a slice of the function's read set.
    kind: str = KIND_REEXEC
    #: ``apply`` intents only: the buffered speculative writes for *this*
    #: shard, as (table, key, value) tuples.
    writes: tuple = ()
    #: ``apply`` intents only: endpoint name of the coordinating shard's
    #: server, where the transaction's commit/abort record lives.
    coordinator: str = ""

    def to_value(self) -> dict:
        return {
            "execution_id": self.execution_id,
            "status": self.status,
            "function_id": self.function_id,
            "created_at": self.created_at,
            "args": list(self.args),
            "trace_id": self.trace_id,
            "kind": self.kind,
            "writes": [list(w) for w in self.writes],
            "coordinator": self.coordinator,
        }

    @staticmethod
    def from_value(value: dict) -> "WriteIntent":
        return WriteIntent(
            execution_id=value["execution_id"],
            status=value["status"],
            function_id=value["function_id"],
            created_at=value["created_at"],
            args=tuple(value.get("args", ())),
            trace_id=value.get("trace_id", 0),
            kind=value.get("kind", KIND_REEXEC),
            writes=tuple(tuple(w) for w in value.get("writes", ())),
            coordinator=value.get("coordinator", ""),
        )


class IntentTable:
    """CRUD for write intents over the primary store.

    The *completion* transition uses a conditional put so that the two
    racing completers — the followup handler and the re-execution timer —
    cannot both win: exactly one sees the pending version and applies the
    writes (§3.6, "validation succeeds but the followup is late").
    """

    def __init__(self, store: KVStore, sim=None):
        self.store = store
        # Optional simulator handle: with one installed, intent lifecycle
        # transitions are emitted as trace events (no-op when tracing is
        # disabled or no sim is attached — plain unit tests pass neither).
        self.sim = sim

    def _event(self, name: str, execution_id: str) -> None:
        if self.sim is not None:
            obs = self.sim.obs
            if obs.enabled:
                obs.event(name, execution_id=execution_id)

    def create(
        self,
        execution_id: str,
        function_id: str,
        now: float,
        args: tuple = (),
        trace_id: int = 0,
        kind: str = KIND_REEXEC,
        writes: tuple = (),
        coordinator: str = "",
    ) -> WriteIntent:
        """Install a PENDING intent; the execution id must be fresh."""
        if self.store.exists(INTENT_TABLE, execution_id):
            raise ProtocolError(f"intent for execution {execution_id!r} already exists")
        intent = WriteIntent(
            execution_id, IntentStatus.PENDING, function_id, now, args, trace_id,
            kind=kind, writes=writes, coordinator=coordinator,
        )
        self.store.put(INTENT_TABLE, execution_id, intent.to_value())
        self._event("intent.create", execution_id)
        return intent

    def get(self, execution_id: str) -> Optional[WriteIntent]:
        item = self.store.get_or_none(INTENT_TABLE, execution_id)
        return None if item is None else WriteIntent.from_value(item.value)

    def try_complete(self, execution_id: str) -> bool:
        """Atomically move PENDING → COMPLETED; returns False if someone
        else already completed (or removed) the intent.

        The caller may apply the execution's writes only when this returns
        True — that is the at-most-once guarantee for speculative writes.
        """
        item = self.store.get_or_none(INTENT_TABLE, execution_id)
        if item is None:
            self._event("intent.race_lost", execution_id)
            return False
        intent = WriteIntent.from_value(item.value)
        if intent.status != IntentStatus.PENDING:
            self._event("intent.race_lost", execution_id)
            return False
        completed = WriteIntent(
            intent.execution_id, IntentStatus.COMPLETED, intent.function_id,
            intent.created_at, trace_id=intent.trace_id, kind=intent.kind,
            coordinator=intent.coordinator,
        )
        try:
            self.store.conditional_put(
                INTENT_TABLE, execution_id, completed.to_value(), item.version
            )
        except ConditionFailed:
            self._event("intent.race_lost", execution_id)
            return False
        self._event("intent.complete", execution_id)
        return True

    def remove(self, execution_id: str) -> bool:
        """Drop the intent once handled (§3.4: 'the near-storage location
        now removes it from storage')."""
        return self.store.delete(INTENT_TABLE, execution_id)

    def pending(self) -> List[WriteIntent]:
        """All intents still pending (crash-recovery sweep in tests)."""
        out = []
        for _key, item in self.store.scan(INTENT_TABLE):
            intent = WriteIntent.from_value(item.value)
            if intent.status == IntentStatus.PENDING:
                out.append(intent)
        return out


class IdempotencyTable:
    """At-most-twice execution guard for the replicated server (§5.6).

    Records which site(s) have executed a given execution id.  ``claim``
    returns True exactly once per (execution id, site kind), so a function
    runs at most once near-user and at most once near-storage even across
    server failovers.
    """

    NEAR_USER = "near_user"
    NEAR_STORAGE = "near_storage"

    def __init__(self, store: KVStore):
        self.store = store

    def claim(self, execution_id: str, site: str) -> bool:
        """Attempt to claim the (execution, site) slot; True on success."""
        if site not in (self.NEAR_USER, self.NEAR_STORAGE):
            raise ValueError(f"unknown site {site!r}")
        key = f"{execution_id}:{site}"
        item = self.store.get_or_none(IDEM_TABLE, key)
        if item is not None:
            return False
        try:
            self.store.conditional_put(IDEM_TABLE, key, {"claimed": True}, expected_version=0)
        except ConditionFailed:
            return False
        return True

    def claimed(self, execution_id: str, site: str) -> bool:
        return self.store.exists(IDEM_TABLE, f"{execution_id}:{site}")

    def remove(self, execution_id: str) -> None:
        """Garbage-collect both slots once the execution is fully settled."""
        self.store.delete(IDEM_TABLE, f"{execution_id}:{self.NEAR_USER}")
        self.store.delete(IDEM_TABLE, f"{execution_id}:{self.NEAR_STORAGE}")
