"""The primary storage system: a linearizable, versioned, multi-table KV store.

This is the reproduction's stand-in for DynamoDB in the near-storage
location (paper §3.1): it is linearizable (a single-site store mutated
atomically within the simulation), durable by assumption, and keeps a
*version number* per item which Radical increments on every update — the
LVI protocol's validation step compares cached versions against these.

Versions start at 0 for a key that has never been written and increase by
exactly 1 per write; the near-user cache uses -1 as its "not cached"
sentinel (§3.2), which therefore never matches any primary version.

The store itself is passive and synchronous; *access latency* is modelled by
the component making the access (e.g. the LVI server charges one
in-datacenter round trip per batch of storage operations), matching how the
paper attributes latency to the network rather than to DynamoDB's innards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ConditionFailed, KeyMissing
from .fastcopy import fast_deepcopy

__all__ = ["Item", "KVStore", "WriteOp", "VERSION_ABSENT", "VERSION_MISS"]

#: Version of a key that exists in no table (never written).
VERSION_ABSENT = 0
#: Sentinel a cache reports for a key it has no entry for (paper §3.2).
VERSION_MISS = -1


@dataclass(frozen=True)
class Item:
    """An immutable snapshot of one stored item: value plus version."""

    value: Any
    version: int

    def copy_value(self) -> Any:
        """A defensive deep copy of the value for handing to callers."""
        return fast_deepcopy(self.value)


@dataclass(frozen=True)
class WriteOp:
    """One write in a batch: table, key, and the new value."""

    table: str
    key: str
    value: Any


class KVStore:
    """Linearizable multi-table key-value store with per-item versions."""

    def __init__(self, name: str = "primary"):
        self.name = name
        self._tables: Dict[str, Dict[str, Item]] = {}
        self.reads = 0
        self.writes = 0

    # -- single-item operations ------------------------------------------------

    def get(self, table: str, key: str) -> Item:
        """Return the item; raises :class:`KeyMissing` if absent."""
        self.reads += 1
        item = self._tables.get(table, {}).get(key)
        if item is None:
            raise KeyMissing(table, key)
        return Item(item.copy_value(), item.version)

    def get_or_none(self, table: str, key: str) -> Optional[Item]:
        """Return the item or ``None`` if absent (no exception)."""
        self.reads += 1
        item = self._tables.get(table, {}).get(key)
        if item is None:
            return None
        return Item(item.copy_value(), item.version)

    def version(self, table: str, key: str) -> int:
        """The item's version, or :data:`VERSION_ABSENT` if never written."""
        item = self._tables.get(table, {}).get(key)
        return VERSION_ABSENT if item is None else item.version

    def put(self, table: str, key: str, value: Any) -> int:
        """Write a value, incrementing the version; returns the new version.

        Radical interposes on every write to bump the version (§3.1); here
        the store does it natively, which is equivalent.
        """
        self.writes += 1
        tbl = self._tables.setdefault(table, {})
        old = tbl.get(key)
        new_version = (old.version if old is not None else VERSION_ABSENT) + 1
        tbl[key] = Item(fast_deepcopy(value), new_version)
        return new_version

    def conditional_put(self, table: str, key: str, value: Any, expected_version: int) -> int:
        """Write only if the current version equals ``expected_version``.

        Raises :class:`ConditionFailed` otherwise.  Used by the intent
        table to make duplicate followup/re-execution application safe.
        """
        current = self.version(table, key)
        if current != expected_version:
            raise ConditionFailed(
                f"{table}/{key}: expected version {expected_version}, found {current}"
            )
        return self.put(table, key, value)

    def delete(self, table: str, key: str) -> bool:
        """Remove a key; returns True if it existed.

        Deletion erases the version history; Radical only deletes from its
        metadata tables (intents, idempotency keys), never from app data.
        """
        self.writes += 1
        tbl = self._tables.get(table)
        if tbl is None or key not in tbl:
            return False
        del tbl[key]
        return True

    def exists(self, table: str, key: str) -> bool:
        return key in self._tables.get(table, {})

    # -- batch operations (one storage round trip in the protocol) ---------------

    def batch_versions(self, keys: Iterable[Tuple[str, str]]) -> Dict[Tuple[str, str], int]:
        """Versions for many (table, key) pairs at once."""
        return {(t, k): self.version(t, k) for (t, k) in keys}

    def batch_get(self, keys: Iterable[Tuple[str, str]]) -> Dict[Tuple[str, str], Optional[Item]]:
        """Items for many (table, key) pairs; absent keys map to ``None``."""
        return {(t, k): self.get_or_none(t, k) for (t, k) in keys}

    def apply_writes(self, writes: Iterable[WriteOp]) -> Dict[Tuple[str, str], int]:
        """Apply a batch of writes atomically; returns the new versions.

        Atomicity is trivial here (single-site, no yielding between puts),
        which matches the LVI server applying a followup's writes while
        still holding that execution's write locks.
        """
        return {(w.table, w.key): self.put(w.table, w.key, w.value) for w in writes}

    # -- introspection ------------------------------------------------------------

    def scan(self, table: str) -> List[Tuple[str, Item]]:
        """All (key, item) pairs of a table, sorted by key (for tests)."""
        tbl = self._tables.get(table, {})
        return [(k, Item(v.copy_value(), v.version)) for k, v in sorted(tbl.items())]

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def size(self, table: str) -> int:
        return len(self._tables.get(table, {}))
