"""Read/write lock manager used by the LVI server (paper §3.6).

Each LVI request acquires a read or write lock per item before validation;
the locks are held until the execution's writes reach primary storage (via
followup or deterministic re-execution) and are then released as a group.

Semantics reproduced from the paper:

* read locks are shared, write locks exclusive;
* lock sets are acquired in **lexicographic key order** so that concurrent
  multi-key acquisitions cannot deadlock;
* waiters are served FIFO per key — a waiting writer blocks later readers,
  preventing writer starvation (read-heavy workloads are the common case,
  §3.6);
* all state is indexed by an *owner* (the execution id), so release is a
  single "release everything owner X holds".

Lock *latency* is charged by the caller: the in-memory singleton server
acquires locks instantly, while the replicated server of §5.6 charges
2.3 ms per lock through Raft.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Iterable, List, Optional, Set, Tuple

from ..errors import LockError
from ..sim import Event, Metrics, Simulator

__all__ = ["LockMode", "LockManager", "LockRequest"]

Key = Tuple[str, str]  # (table, key)


class LockMode:
    """Lock modes; WRITE subsumes READ when both are requested."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class LockRequest:
    """One (key, mode) element of an acquisition."""

    key: Key
    mode: str


@dataclass
class _Waiter:
    owner: str
    mode: str
    event: Event


@dataclass
class _LockRecord:
    """Per-key lock state: current holders plus a FIFO wait queue."""

    readers: Set[str] = field(default_factory=set)
    writer: Optional[str] = None
    queue: Deque[_Waiter] = field(default_factory=deque)

    def idle(self) -> bool:
        return not self.readers and self.writer is None and not self.queue


class LockManager:
    """Table of per-key read/write locks with FIFO fairness."""

    def __init__(self, sim: Simulator, metrics: Optional[Metrics] = None, name: str = ""):
        self.sim = sim
        self.metrics = metrics
        self.name = name
        self._locks: Dict[Key, _LockRecord] = {}
        self._held: Dict[str, List[Tuple[Key, str]]] = {}
        # Metrics the benchmarks read.  The same numbers also flow into the
        # shared ``metrics`` bag (when one is wired) as ``lock.wait``
        # samples tagged by server, so observability does not depend on
        # holding a reference to a table that ``crash()`` replaces.
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_ms = 0.0
        self.max_wait_ms = 0.0

    # -- acquisition -------------------------------------------------------

    @staticmethod
    def normalize(read_keys: Iterable[Key], write_keys: Iterable[Key]) -> List[LockRequest]:
        """Collapse read+write requests for the same key into a write lock
        and return the requests sorted lexicographically (the paper's
        deadlock-avoidance order)."""
        writes = set(write_keys)
        reads = set(read_keys) - writes
        requests = [LockRequest(k, LockMode.WRITE) for k in writes]
        requests += [LockRequest(k, LockMode.READ) for k in reads]
        requests.sort(key=lambda r: r.key)
        return requests

    def acquire_all(
        self,
        owner: str,
        read_keys: Iterable[Key],
        write_keys: Iterable[Key],
        per_lock_latency: float = 0.0,
    ) -> Generator:
        """Acquire every lock in sorted order; a generator to run inside a
        process (``yield from``).  Returns the number of locks acquired.

        ``per_lock_latency`` charges a fixed cost per lock *after* it is
        granted — the §5.6 replicated server's 2.3 ms serial Raft writes.
        """
        if owner in self._held:
            raise LockError(f"owner {owner!r} already holds locks")
        requests = self.normalize(read_keys, write_keys)
        self._held[owner] = []
        started = self.sim.now
        obs = self.sim.obs
        for req in requests:
            ev = self._acquire_one(owner, req.key, req.mode)
            if not ev.triggered:
                self.contended_acquisitions += 1
                # A contended acquisition is queue time on the server's
                # critical path: record it as a lock.wait span so the
                # analyzer can attribute p99 tails to hot keys.
                wait_span = None
                if obs.enabled:
                    wait_span = obs.start(
                        "lock.wait", kind="lock",
                        table=req.key[0], key=req.key[1], mode=req.mode,
                        queue=self.queue_length(req.key),
                    )
                try:
                    yield ev
                finally:
                    # Close on the kill/interrupt path too, so failure
                    # injection cannot leak open spans.
                    if wait_span is not None and not wait_span.finished:
                        wait_span.finish(self.sim.now)
            else:
                yield ev
            self._held[owner].append((req.key, req.mode))
            if per_lock_latency > 0:
                yield self.sim.timeout(per_lock_latency)
        waited = self.sim.now - started - per_lock_latency * len(requests)
        self.total_wait_ms += waited
        self.max_wait_ms = max(self.max_wait_ms, waited)
        self.acquisitions += len(requests)
        if self.metrics is not None:
            self.metrics.record_tagged("lock.wait", waited, server=self.name)
        return len(requests)

    def _acquire_one(self, owner: str, key: Key, mode: str) -> Event:
        record = self._locks.setdefault(key, _LockRecord())
        ev = self.sim.event(name=f"lock({key},{mode},{owner})")
        if self._grantable(record, mode):
            self._grant(record, owner, mode)
            ev.trigger(None)
        else:
            record.queue.append(_Waiter(owner, mode, ev))
        return ev

    @staticmethod
    def _grantable(record: _LockRecord, mode: str) -> bool:
        # FIFO fairness: nothing may jump a non-empty queue.
        if record.queue:
            return False
        if mode == LockMode.WRITE:
            return not record.readers and record.writer is None
        return record.writer is None

    @staticmethod
    def _grant(record: _LockRecord, owner: str, mode: str) -> None:
        if mode == LockMode.WRITE:
            record.writer = owner
        else:
            record.readers.add(owner)

    # -- release -----------------------------------------------------------

    def release_all(self, owner: str) -> int:
        """Release everything ``owner`` holds; returns the count released.

        Unknown owners are an error (a double release would mask protocol
        bugs where two code paths both think they finished an execution).
        """
        held = self._held.pop(owner, None)
        if held is None:
            raise LockError(f"owner {owner!r} holds no locks")
        for key, mode in held:
            record = self._locks[key]
            if mode == LockMode.WRITE:
                if record.writer != owner:
                    raise LockError(f"{key}: write lock not held by {owner!r}")
                record.writer = None
            else:
                if owner not in record.readers:
                    raise LockError(f"{key}: read lock not held by {owner!r}")
                record.readers.discard(owner)
            self._wake(key, record)
        return len(held)

    def cancel(self, owner: str) -> int:
        """Abort an in-progress acquisition by ``owner``.

        Interrupting :meth:`acquire_all` mid-wait leaves two kinds of
        state behind: locks already granted (indexed in ``_held``) and a
        ``_Waiter`` still queued on the contended key — which a later
        ``_wake`` would grant to a process that no longer exists, leaking
        the lock forever.  This purges both.  Safe to call whether or not
        the owner ever reached the queue; returns the count of granted
        locks released.  Used by the cross-shard prepare path, whose lock
        waits are bounded (no global lock order exists across shards, so
        distributed deadlock is broken by timeout-and-retry instead).
        """
        for key in list(self._locks):
            record = self._locks[key]
            if any(w.owner == owner for w in record.queue):
                record.queue = deque(w for w in record.queue if w.owner != owner)
                # The head may have changed: re-run the grant loop (it
                # also garbage-collects the record if now idle).
                self._wake(key, record)
        if owner not in self._held:
            return 0
        return self.release_all(owner)

    def _wake(self, key: Key, record: _LockRecord) -> None:
        # Grant from the head of the queue: either one writer, or a batch
        # of readers up to the next waiting writer.
        while record.queue:
            head = record.queue[0]
            if not self._compatible_now(record, head.mode):
                break
            record.queue.popleft()
            self._grant(record, head.owner, head.mode)
            head.event.trigger(None)
            if head.mode == LockMode.WRITE:
                break
        if record.idle():
            del self._locks[key]

    @staticmethod
    def _compatible_now(record: _LockRecord, mode: str) -> bool:
        if mode == LockMode.WRITE:
            return not record.readers and record.writer is None
        return record.writer is None

    # -- introspection ----------------------------------------------------------

    def holders(self, key: Key) -> Tuple[Set[str], Optional[str]]:
        """(readers, writer) currently holding ``key``."""
        record = self._locks.get(key)
        if record is None:
            return set(), None
        return set(record.readers), record.writer

    def held_by(self, owner: str) -> List[Tuple[Key, str]]:
        return list(self._held.get(owner, ()))

    def held_owners(self) -> List[str]:
        """Every owner currently holding at least one granted lock — the
        chaos harness asserts this drains to empty (no leaked locks from
        shed or aborted executions)."""
        return list(self._held)

    def queue_length(self, key: Key) -> int:
        record = self._locks.get(key)
        return 0 if record is None else len(record.queue)

    def assert_invariants(self) -> None:
        """Raise :class:`LockError` if any RW invariant is violated.

        Called by property tests after every step: a writer excludes all
        other holders, and granted locks match the per-owner index.
        """
        for key, record in self._locks.items():
            if record.writer is not None and record.readers:
                raise LockError(f"{key}: writer and readers coexist")
        index: Dict[Key, List[Tuple[str, str]]] = {}
        for owner, held in self._held.items():
            for key, mode in held:
                index.setdefault(key, []).append((owner, mode))
        for key, grants in index.items():
            record = self._locks.get(key)
            if record is None:
                raise LockError(f"{key}: held but no record exists")
            for owner, mode in grants:
                if mode == LockMode.WRITE and record.writer != owner:
                    raise LockError(f"{key}: index says {owner} writes, record disagrees")
                if mode == LockMode.READ and owner not in record.readers:
                    raise LockError(f"{key}: index says {owner} reads, record disagrees")
