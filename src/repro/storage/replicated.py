"""A strongly consistent geo-replicated store (the Figure 1 baseline).

The paper's motivation experiment deploys DynamoDB global tables with
strong consistency across Virginia / Ohio / Oregon and shows that placing
consistent replicas near users does **not** help: the PRAM impossibility
result forces every strongly consistent access to pay for coordination
proportional to the inter-replica distance.

We reproduce that baseline with a from-scratch **ABD** (Attiya-Bar-Noy-
Dolev) multi-writer atomic register layered over the simulated network:

* each region hosts a replica holding (value, timestamp) per key;
* a client sends its operation to the *nearest* replica, which acts as
  coordinator (like a regional DynamoDB endpoint);
* reads run two majority phases (query-max, then write-back) and writes run
  two majority phases (query-max, then store) — the classic price of
  leaderless linearizability.

The resulting latencies exhibit exactly the shape of Figure 1: local-ish
access to the coordinator plus unavoidable cross-region quorum round trips.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import StorageError
from ..sim import Network, Simulator

__all__ = ["ReplicatedStore", "QuorumClient", "Timestamp"]


@dataclass(frozen=True, order=True)
class Timestamp:
    """Lamport-style write timestamp: (counter, writer id) totally ordered."""

    counter: int
    writer: str

    @staticmethod
    def zero() -> "Timestamp":
        return Timestamp(0, "")


@dataclass
class _Tagged:
    value: Any
    ts: Timestamp


class _Replica:
    """One region's replica: a tagged-value map plus its RPC handler."""

    def __init__(self, store: "ReplicatedStore", region: str):
        self.store = store
        self.region = region
        self.name = f"{store.name}-replica-{region}"
        self.data: Dict[str, _Tagged] = {}
        store.net.serve(self.name, region, self.handle)

    def handle(self, request: Tuple, src: str) -> Generator:
        """RPC handler for both ABD phases and client operations."""
        op = request[0]
        if op == "query":
            _, key = request
            tagged = self.data.get(key)
            yield self.store.sim.timeout(self.store.replica_service_ms)
            if tagged is None:
                return (Timestamp.zero(), None)
            return (tagged.ts, tagged.value)
        if op == "store":
            _, key, value, ts = request
            yield self.store.sim.timeout(self.store.replica_service_ms)
            current = self.data.get(key)
            if current is None or current.ts < ts:
                self.data[key] = _Tagged(value, ts)
            return "ack"
        if op == "client_read":
            _, key = request
            value = yield from self.store._abd_read(self, key)
            return value
        if op == "client_write":
            _, key, value = request
            yield from self.store._abd_write(self, key, value)
            return "ok"
        raise StorageError(f"unknown replicated-store op {op!r}")


class ReplicatedStore:
    """The replica group; create clients with :meth:`client`."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        replica_regions: List[str],
        name: str = "global-table",
        replica_service_ms: float = 1.0,
    ):
        if len(replica_regions) < 2:
            raise ValueError("a replicated store needs at least 2 replicas")
        self.sim = sim
        self.net = net
        self.name = name
        self.replica_service_ms = replica_service_ms
        self.regions = list(replica_regions)
        self.replicas = {r: _Replica(self, r) for r in self.regions}
        self.majority = len(self.regions) // 2 + 1
        self._writer_ids = itertools.count()

    # -- client factory ------------------------------------------------------

    def client(self, region: str, name: str) -> "QuorumClient":
        """A client endpoint in ``region`` routed to its nearest replica."""
        coordinator = min(
            self.regions, key=lambda r: self.net.latency.rtt(region, r)
        )
        self.net.register(name, region)
        return QuorumClient(self, name, region, coordinator)

    # -- ABD protocol (runs on the coordinator replica) ------------------------

    def _quorum(self, coordinator: _Replica, request: Tuple) -> Generator:
        """Send ``request`` to every replica; return the first majority of
        responses (including the coordinator's own, answered locally)."""
        responses: List[Any] = []
        done = self.sim.event(name="quorum")

        def one(replica: _Replica) -> Generator:
            if replica is coordinator:
                # Local processing: no network hop, just service time.
                result = yield self.sim.spawn(replica.handle(request, coordinator.name))
            else:
                result = yield from self.net.call(coordinator.name, replica.name, request)
            responses.append(result)
            if len(responses) >= self.majority and not done.triggered:
                done.trigger(list(responses))

        for replica in self.replicas.values():
            self.sim.spawn(one(replica), name=f"quorum-leg({replica.region})")
        results = yield done
        return results

    def _abd_read(self, coordinator: _Replica, key: str) -> Generator:
        """Two-phase linearizable read: query-max then write-back."""
        answers = yield from self._quorum(coordinator, ("query", key))
        ts, value = max(answers, key=lambda pair: pair[0])
        # Write-back so later reads cannot observe an older value.
        yield from self._quorum(coordinator, ("store", key, value, ts))
        return value

    def _abd_write(self, coordinator: _Replica, key: str, value: Any) -> Generator:
        """Two-phase write: query-max timestamp, then store higher one."""
        answers = yield from self._quorum(coordinator, ("query", key))
        max_ts = max(ts for ts, _value in answers)
        new_ts = Timestamp(max_ts.counter + 1, coordinator.name)
        yield from self._quorum(coordinator, ("store", key, value, new_ts))

    # -- convenience for tests ---------------------------------------------------

    def peek(self, region: str, key: str) -> Optional[Any]:
        """Directly inspect one replica's current value (test helper)."""
        tagged = self.replicas[region].data.get(key)
        return None if tagged is None else tagged.value


class QuorumClient:
    """A region-local handle performing linearizable reads and writes."""

    def __init__(self, store: ReplicatedStore, name: str, region: str, coordinator: str):
        self.store = store
        self.name = name
        self.region = region
        self.coordinator = coordinator

    def read(self, table: str, key: str) -> Generator:
        """Linearizable read; generator returning the value (or None)."""
        target = self.store.replicas[self.coordinator].name
        value = yield from self.store.net.call(
            self.name, target, ("client_read", f"{table}/{key}")
        )
        return value

    def write(self, table: str, key: str, value: Any) -> Generator:
        """Linearizable write; generator completing when durable."""
        target = self.store.replicas[self.coordinator].name
        yield from self.store.net.call(self.name, target, ("client_write", f"{table}/{key}", value))
