"""Topology layer: declarative deployment construction and key sharding.

``TopologySpec`` describes a Radical deployment (regions, shard count,
placement, cache/fault options); ``Deployment.build`` constructs it in the
canonical order every harness now shares.  ``ShardMap``/``ShardRouter``
partition the near-storage tier; see docs/TOPOLOGY.md for the cross-shard
commit rule.
"""

from .deployment import ASSIGNMENT_POLICIES, Deployment, PopAssignment, TopologySpec
from .shardmap import (
    ConflictDetector,
    DirtySet,
    HashShardMap,
    RangeShardMap,
    ShardMap,
    ShardRouter,
)

__all__ = [
    "ASSIGNMENT_POLICIES",
    "ConflictDetector",
    "Deployment",
    "DirtySet",
    "HashShardMap",
    "PopAssignment",
    "RangeShardMap",
    "ShardMap",
    "ShardRouter",
    "TopologySpec",
]
