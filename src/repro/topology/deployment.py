"""Declarative topology construction: one builder for every deployment.

Before this module, four call sites hand-rolled the same Radical stack —
the experiment harness, the per-figure drivers, the chaos harness, and the
test scaffolding — each with its own slightly different wiring.  A
:class:`TopologySpec` now *describes* a deployment (regions, shard count,
placement, cache persistence, fault plan, tracing) and
:meth:`Deployment.build` constructs it in one canonical order:

    sim → trace collector → random streams → network → metrics → history
    → registry → stores (+ seed data) → raft (+ prewarm) → LVI servers
    → per-region caches + runtimes → fault scheduler

That order matters: random streams are name-keyed, so components draw
identical sequences regardless of *when* they are built, but the network
endpoint-name counter and the raft prewarm run are order-sensitive — the
canonical order reproduces the seed builders byte for byte.  A one-shard
``Deployment`` is the seed topology exactly: same endpoint names, same
stream names, same virtual timeline.

With ``shards > 1`` the near-storage tier is partitioned: each shard gets
an independent :class:`~repro.core.LVIServer` (own lock table, intent
table, primary store slice) and runtimes receive a
:class:`~repro.topology.ShardRouter` that sends single-shard requests down
the seed's one-RPC fast path and cross-shard requests through the
scatter-gather prepare/commit flow (docs/TOPOLOGY.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..consistency import HistoryRecorder
from ..core import FunctionRegistry, LVIServer, NearUserRuntime, RadicalConfig
from ..errors import FaultConfigError
from ..mesh import CacheMesh, MeshSpec
from ..sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from ..storage import KVStore, NearUserCache
from .shardmap import HashShardMap, ShardMap, ShardRouter

__all__ = ["TopologySpec", "Deployment"]

Key = Tuple[str, str]


@dataclass
class TopologySpec:
    """Everything that defines a Radical deployment's shape.

    The defaults describe the paper's topology: five near-user regions,
    one LVI server + primary store in Virginia, persistent warmed caches.
    """

    regions: Sequence[str] = Region.NEAR_USER
    shards: int = 1
    seed: int = 42
    config: RadicalConfig = field(default_factory=RadicalConfig)
    network_jitter_sigma: float = 0.0
    trace: bool = False
    warm_caches: bool = True
    persistent_caches: bool = True
    record_history: bool = False
    #: Placement policy; ``None`` means ``HashShardMap(shards)``.
    shard_map: Optional[ShardMap] = None
    #: Armed through the fault scheduler right after construction.
    fault_plan: Optional[Any] = None
    #: Virtual time burned electing an initial Raft leader before traffic
    #: (the seed harness's 500 ms; chaos runs elect under traffic with 0).
    raft_prewarm_ms: float = 500.0
    #: Cache mesh configuration (repro.mesh).  ``None`` keeps the seed's
    #: isolated per-region caches; a :class:`~repro.mesh.MeshSpec` makes
    #: every region's cache a gossiping PoP.  A 1-region mesh registers no
    #: endpoints and schedules nothing — virtual-time-identical to None.
    mesh: Optional[MeshSpec] = None

    def resolved_shard_map(self) -> ShardMap:
        if self.shard_map is not None:
            if self.shard_map.nshards != self.shards:
                raise ValueError(
                    f"shard_map covers {self.shard_map.nshards} shard(s) "
                    f"but spec.shards is {self.shards}"
                )
            return self.shard_map
        return HashShardMap(self.shards)

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.config.replicated and self.shards > 1:
            raise ValueError(
                "replicated (Raft-backed) servers are single-shard only"
            )
        if self.mesh is not None:
            self.mesh.validate()
        self.resolved_shard_map()


class _ShardedSeedWriter:
    """Routes an app's ``seed(store, ...)`` puts to the owning shard's
    store, so data seeding stays a plain single-store program."""

    def __init__(self, deployment: "Deployment"):
        self._deployment = deployment

    def put(self, table: str, key: str, value: Any) -> Any:
        return self._deployment.store_for(table, key).put(table, key, value)

    def get(self, table: str, key: str) -> Any:
        return self._deployment.store_for(table, key).get(table, key)

    def get_or_none(self, table: str, key: str) -> Any:
        return self._deployment.store_for(table, key).get_or_none(table, key)


class Deployment:
    """A fully-wired Radical stack, built from a :class:`TopologySpec`.

    Construction happens in :meth:`build`; the instance then exposes the
    pieces callers drive (``sim``, ``runtimes``, ``metrics``, …) plus
    shard-aware helpers (:meth:`store_for`, :meth:`pending_intents`) that
    replace direct single-store access in reconciliation code.
    """

    def __init__(self) -> None:
        # Populated by build(); listed here for discoverability.
        self.spec: TopologySpec
        self.sim: Simulator
        self.net: Network
        self.streams: RandomStreams
        self.metrics: Metrics
        self.history: Optional[HistoryRecorder] = None
        self.registry: FunctionRegistry
        self.stores: List[KVStore] = []
        self.servers: List[LVIServer] = []
        self.router: Optional[ShardRouter] = None
        self.caches: Dict[str, NearUserCache] = {}
        self.runtimes: Dict[str, NearUserRuntime] = {}
        self.mesh: Optional[CacheMesh] = None
        self.raft = None
        self.scheduler = None
        self.trace = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec: TopologySpec,
        app=None,
        functions: Sequence[Any] = (),
        seed_data: Optional[Callable[[Any], None]] = None,
    ) -> "Deployment":
        """Construct the deployment.

        Exactly one source of functions: an ``app`` (its specs are
        registered and its seeder runs against the sharded store view) or
        an explicit ``functions`` list of :class:`FunctionSpec` plus an
        optional ``seed_data(store)`` callback.
        """
        spec.validate()
        if app is not None and functions:
            raise ValueError("pass an app or explicit functions, not both")
        self = cls()
        self.spec = spec
        cfg = spec.config

        sim = Simulator()
        if spec.trace:
            from ..obs import TraceCollector

            # Installed before any component is built so every layer sees it.
            sim.obs = TraceCollector(sim)
            self.trace = sim.obs
        self.sim = sim
        self.streams = RandomStreams(spec.seed)
        self.net = Network(
            sim, paper_latency_table(), self.streams,
            jitter_sigma=spec.network_jitter_sigma,
        )
        self.metrics = Metrics()
        if spec.record_history:
            self.history = HistoryRecorder()

        self.registry = FunctionRegistry()
        if app is not None:
            self.registry.register_all(app.specs())
        else:
            for fn_spec in functions:
                self.registry.register(fn_spec)

        # Stores: shard 0 keeps the seed's anonymous KVStore() so one-shard
        # deployments are indistinguishable from the hand-rolled builders.
        self.stores = [
            KVStore() if k == 0 else KVStore(name=f"primary-shard{k}")
            for k in range(spec.shards)
        ]
        shard_map = spec.resolved_shard_map()
        self._shard_map = shard_map
        seed_view = self.stores[0] if spec.shards == 1 else _ShardedSeedWriter(self)
        if app is not None:
            app.seed(seed_view, self.streams, app.context)
        elif seed_data is not None:
            seed_data(seed_view)

        if cfg.replicated:
            from ..raft import RaftCluster

            self.raft = RaftCluster(sim, self.streams)
            self.raft.start()
            if spec.raft_prewarm_ms > 0:
                sim.run(until=spec.raft_prewarm_ms)  # elect a leader first

        for k in range(spec.shards):
            name = "lvi-server" if k == 0 else f"lvi-server-{k}"
            self.servers.append(
                LVIServer(
                    sim, self.net, self.registry, self.stores[k], cfg,
                    self.streams, self.metrics, name=name,
                    raft_cluster=self.raft if k == 0 else None, shard=k,
                )
            )
        if spec.shards > 1:
            self.router = ShardRouter(shard_map, [s.name for s in self.servers])

        if spec.mesh is not None and spec.mesh.enabled:
            self.mesh = CacheMesh(
                sim, self.net, spec.mesh, list(spec.regions), self.metrics
            )
        for region in spec.regions:
            if self.mesh is not None:
                cache = self.mesh.make_pop(region, persistent=spec.persistent_caches)
            else:
                cache = NearUserCache(region, persistent=spec.persistent_caches)
            if spec.warm_caches:
                for store in self.stores:
                    _warm_cache(cache, store)
            self.caches[region] = cache
            self.runtimes[region] = NearUserRuntime(
                sim, self.net, region, cache, self.registry, cfg,
                self.streams, self.metrics, router=self.router,
                pop=self.mesh.pop(region) if self.mesh is not None else None,
            )
        if self.mesh is not None:
            # After every runtime: gossip endpoints must not perturb the
            # endpoint-name counters the runtimes draw from.
            self.mesh.start()

        if spec.fault_plan is not None:
            from ..faults.scheduler import FaultScheduler

            plan = spec.fault_plan
            plan.validate()
            if plan.replicated and not cfg.replicated:
                raise FaultConfigError(
                    f"plan {plan.name!r} requires a replicated deployment"
                )
            self.scheduler = FaultScheduler(
                sim, self.net, plan, targets=self.fault_targets(),
                metrics=self.metrics,
            )
            self.scheduler.start()
        return self

    # -- convenience accessors ---------------------------------------------

    @property
    def server(self) -> LVIServer:
        """Shard 0's server (the seed's single ``lvi-server``)."""
        return self.servers[0]

    @property
    def store(self) -> KVStore:
        """Shard 0's store (the seed's single primary store)."""
        return self.stores[0]

    @property
    def nshards(self) -> int:
        return self.spec.shards

    def shard_of(self, table: str, key: str) -> int:
        return self._shard_map.shard_of(table, key)

    def store_for(self, table: str, key: str) -> KVStore:
        return self.stores[self.shard_of(table, key)]

    def get_or_none(self, table: str, key: str):
        """Shard-routed read of the authoritative primary state."""
        return self.store_for(table, key).get_or_none(table, key)

    def pending_intents(self) -> List[Any]:
        """Unsettled write intents across every shard (reconciliation)."""
        return [i for server in self.servers for i in server.intents.pending()]

    def fault_targets(self) -> Dict[str, Any]:
        """Crash/restartable objects, keyed the way CrashWindows name them."""
        targets: Dict[str, Any] = {s.name: s for s in self.servers}
        if self.raft is not None:
            targets.update(self.raft.nodes)
        if self.mesh is not None:
            targets.update(self.mesh.fault_targets())
        return targets


def _warm_cache(cache: NearUserCache, store: KVStore) -> None:
    """Copy a primary store's current contents into a near-user cache —
    the steady-state starting point (the paper's runs measure warmed
    deployments; cold-start is the §3.2 bootstrap ablation).  Protocol
    tables (``_radical*``) never enter caches."""
    for table in store.table_names():
        if table.startswith("_radical"):
            continue
        for key, item in store.scan(table):
            cache.install(table, key, item)
