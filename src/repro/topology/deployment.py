"""Declarative topology construction: one builder for every deployment.

Before this module, four call sites hand-rolled the same Radical stack —
the experiment harness, the per-figure drivers, the chaos harness, and the
test scaffolding — each with its own slightly different wiring.  A
:class:`TopologySpec` now *describes* a deployment (regions, shard count,
placement, cache persistence, fault plan, tracing) and
:meth:`Deployment.build` constructs it in one canonical order:

    sim → trace collector → random streams → network → metrics → history
    → registry → stores (+ seed data) → raft (+ prewarm) → LVI servers
    → per-region caches + runtimes → fault scheduler

That order matters: random streams are name-keyed, so components draw
identical sequences regardless of *when* they are built, but the network
endpoint-name counter and the raft prewarm run are order-sensitive — the
canonical order reproduces the seed builders byte for byte.  A one-shard
``Deployment`` is the seed topology exactly: same endpoint names, same
stream names, same virtual timeline.

With ``shards > 1`` the near-storage tier is partitioned: each shard gets
an independent :class:`~repro.core.LVIServer` (own lock table, intent
table, primary store slice) and runtimes receive a
:class:`~repro.topology.ShardRouter` that sends single-shard requests down
the seed's one-RPC fast path and cross-shard requests through the
scatter-gather prepare/commit flow (docs/TOPOLOGY.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..consistency import HistoryRecorder
from ..core import FunctionRegistry, LVIServer, NearUserRuntime, RadicalConfig
from ..errors import FaultConfigError
from ..mesh import CacheMesh, MeshSpec
from ..sim import (
    LatencyTable,
    Metrics,
    Network,
    RandomStreams,
    Region,
    RttDataset,
    Simulator,
    resolve_rtt_dataset,
)
from ..storage import KVStore, NearUserCache
from .shardmap import ConflictDetector, HashShardMap, ShardMap, ShardRouter

__all__ = [
    "ASSIGNMENT_POLICIES",
    "PopAssignment",
    "TopologySpec",
    "Deployment",
]

Key = Tuple[str, str]

#: Client→PoP assignment policies (docs/ROUTING.md).
#:
#: * ``home-region`` — the seed's behaviour: every client region hosts its
#:   own PoP and clients use it (requires each client region in the PoP set).
#: * ``nearest-rtt`` — clients attach to the lowest-RTT PoP (their own
#:   region when it hosts one).
#: * ``tiered`` — nearest-rtt, but when the nearest PoP is further than
#:   ``tiered_threshold_ms`` away the client falls back to the PoP
#:   co-located with the primary (the direct-to-primary tier).
#: * ``direct`` — every client goes straight to the primary-region PoP;
#:   with warm caches this behaves like the centralized baseline.
ASSIGNMENT_POLICIES = ("home-region", "nearest-rtt", "tiered", "direct")


@dataclass(frozen=True)
class PopAssignment:
    """One client region's routing decision, made at build time."""

    client: str
    pop: str
    #: ``home`` (own-region PoP), ``edge`` (remote PoP won on RTT), or
    #: ``direct`` (fell back to the primary-region PoP).
    mode: str
    policy: str
    #: Client↔PoP round trip the workload layer should model; ``None``
    #: means "keep the seed default" (the 1 ms same-region hop).
    client_rtt_ms: Optional[float]


@dataclass
class TopologySpec:
    """Everything that defines a Radical deployment's shape.

    The defaults describe the paper's topology: five near-user regions,
    one LVI server + primary store in Virginia, persistent warmed caches.
    """

    regions: Sequence[str] = Region.NEAR_USER
    shards: int = 1
    seed: int = 42
    config: RadicalConfig = field(default_factory=RadicalConfig)
    network_jitter_sigma: float = 0.0
    trace: bool = False
    warm_caches: bool = True
    persistent_caches: bool = True
    record_history: bool = False
    #: Placement policy; ``None`` means ``HashShardMap(shards)``.
    shard_map: Optional[ShardMap] = None
    #: Armed through the fault scheduler right after construction.
    fault_plan: Optional[Any] = None
    #: Virtual time burned electing an initial Raft leader before traffic
    #: (the seed harness's 500 ms; chaos runs elect under traffic with 0).
    raft_prewarm_ms: float = 500.0
    #: Cache mesh configuration (repro.mesh).  ``None`` keeps the seed's
    #: isolated per-region caches; a :class:`~repro.mesh.MeshSpec` makes
    #: every region's cache a gossiping PoP.  A 1-region mesh registers no
    #: endpoints and schedules nothing — virtual-time-identical to None.
    mesh: Optional[MeshSpec] = None
    #: Where the latency matrix comes from: ``None`` / ``"paper"`` keeps the
    #: seed's Table-2 matrix; otherwise any :func:`resolve_rtt_dataset` ref
    #: (``{"kind": "synthetic-geo", "n": 25, ...}``) or an
    #: :class:`~repro.sim.RttDataset` instance.
    rtt: Optional[Any] = None
    #: Placement policy: which regions host PoPs (near-user cache +
    #: runtime).  ``None`` means every client region hosts its own PoP —
    #: the seed topology.
    pop_regions: Optional[Sequence[str]] = None
    #: Region hosting the LVI servers + primary store (paper: Virginia).
    primary_region: str = Region.VA
    #: Client→PoP assignment policy; see :data:`ASSIGNMENT_POLICIES`.
    assignment: str = "home-region"
    #: ``tiered`` policy: nearest-PoP RTT above this falls back to direct.
    tiered_threshold_ms: float = 100.0

    @property
    def routing_active(self) -> bool:
        """True when any non-seed routing knob is set.  Seed-default specs
        skip assignment metrics entirely so existing artifacts stay
        byte-identical."""
        return (
            self.rtt is not None
            or self.pop_regions is not None
            or self.primary_region != Region.VA
            or self.assignment != "home-region"
        )

    def resolved_shard_map(self) -> ShardMap:
        if self.shard_map is not None:
            if self.shard_map.nshards != self.shards:
                raise ValueError(
                    f"shard_map covers {self.shard_map.nshards} shard(s) "
                    f"but spec.shards is {self.shards}"
                )
            return self.shard_map
        return HashShardMap(self.shards)

    def validate(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.config.replicated and self.shards > 1:
            raise ValueError(
                "replicated (Raft-backed) servers are single-shard only"
            )
        if not self.regions:
            raise ValueError("spec needs at least one client region")
        if self.assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {self.assignment!r} "
                f"(available: {', '.join(ASSIGNMENT_POLICIES)})"
            )
        if self.tiered_threshold_ms <= 0:
            raise ValueError(
                f"tiered_threshold_ms must be positive, got {self.tiered_threshold_ms}"
            )
        if self.pop_regions is not None:
            if not self.pop_regions:
                raise ValueError("pop_regions, when given, needs at least one region")
            if len(set(self.pop_regions)) != len(tuple(self.pop_regions)):
                raise ValueError("pop_regions contains duplicates")
        if self.assignment == "home-region" and self.pop_regions is not None:
            missing = [r for r in self.regions if r not in set(self.pop_regions)]
            if missing:
                raise ValueError(
                    "home-region assignment needs a PoP in every client region; "
                    f"missing: {', '.join(missing)}"
                )
        if self.mesh is not None:
            self.mesh.validate()
            if self.pop_regions is not None and set(self.pop_regions) != set(self.regions):
                raise ValueError(
                    "a cache mesh requires pop_regions == regions "
                    "(every client region gossips through its own PoP)"
                )
        self.resolved_shard_map()

    def resolved_rtt_dataset(self) -> RttDataset:
        return resolve_rtt_dataset(self.rtt)

    def resolved_pop_regions(self) -> Tuple[str, ...]:
        """PoP set in deterministic build order.  Policies with a direct
        tier get a primary-region PoP appended if absent."""
        pops = tuple(self.pop_regions) if self.pop_regions is not None else tuple(self.regions)
        if self.assignment in ("tiered", "direct") and self.primary_region not in pops:
            pops = pops + (self.primary_region,)
        return pops

    def check_regions(self, table: LatencyTable) -> None:
        """Build-time validation that every region this spec names can be
        resolved by the latency table — a typo'd region fails here with
        the full picture instead of mid-simulation via a KeyError."""
        used = list(dict.fromkeys(
            tuple(self.regions) + self.resolved_pop_regions() + (self.primary_region,)
        ))
        known = table.regions()
        if not known and len(used) <= 1:
            return  # degenerate single-region matrix: nothing to cross
        unknown = [r for r in used if r not in known]
        if unknown:
            raise ValueError(
                f"region(s) not covered by the RTT dataset: {', '.join(sorted(unknown))} "
                f"(dataset regions: {', '.join(sorted(known))})"
            )


class _ShardedSeedWriter:
    """Routes an app's ``seed(store, ...)`` puts to the owning shard's
    store, so data seeding stays a plain single-store program."""

    def __init__(self, deployment: "Deployment"):
        self._deployment = deployment

    def put(self, table: str, key: str, value: Any) -> Any:
        return self._deployment.store_for(table, key).put(table, key, value)

    def get(self, table: str, key: str) -> Any:
        return self._deployment.store_for(table, key).get(table, key)

    def get_or_none(self, table: str, key: str) -> Any:
        return self._deployment.store_for(table, key).get_or_none(table, key)


class Deployment:
    """A fully-wired Radical stack, built from a :class:`TopologySpec`.

    Construction happens in :meth:`build`; the instance then exposes the
    pieces callers drive (``sim``, ``runtimes``, ``metrics``, …) plus
    shard-aware helpers (:meth:`store_for`, :meth:`pending_intents`) that
    replace direct single-store access in reconciliation code.
    """

    def __init__(self) -> None:
        # Populated by build(); listed here for discoverability.
        self.spec: TopologySpec
        self.sim: Simulator
        self.net: Network
        self.streams: RandomStreams
        self.metrics: Metrics
        self.history: Optional[HistoryRecorder] = None
        self.registry: FunctionRegistry
        self.stores: List[KVStore] = []
        self.servers: List[LVIServer] = []
        self.replicas: List[LVIServer] = []
        self.router: Optional[ShardRouter] = None
        self.caches: Dict[str, NearUserCache] = {}
        self.runtimes: Dict[str, NearUserRuntime] = {}
        self.rtt_dataset: Optional[RttDataset] = None
        self.assignments: Dict[str, PopAssignment] = {}
        self.mesh: Optional[CacheMesh] = None
        self.raft = None
        self.scheduler = None
        self.trace = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec: TopologySpec,
        app=None,
        functions: Sequence[Any] = (),
        seed_data: Optional[Callable[[Any], None]] = None,
    ) -> "Deployment":
        """Construct the deployment.

        Exactly one source of functions: an ``app`` (its specs are
        registered and its seeder runs against the sharded store view) or
        an explicit ``functions`` list of :class:`FunctionSpec` plus an
        optional ``seed_data(store)`` callback.
        """
        spec.validate()
        if app is not None and functions:
            raise ValueError("pass an app or explicit functions, not both")
        self = cls()
        self.spec = spec
        cfg = spec.config

        sim = Simulator()
        if spec.trace:
            from ..obs import TraceCollector

            # Installed before any component is built so every layer sees it.
            sim.obs = TraceCollector(sim)
            self.trace = sim.obs
        self.sim = sim
        self.streams = RandomStreams(spec.seed)
        self.rtt_dataset = spec.resolved_rtt_dataset()
        latency = self.rtt_dataset.latency_table()
        spec.check_regions(latency)
        self.net = Network(
            sim, latency, self.streams,
            jitter_sigma=spec.network_jitter_sigma,
        )
        self.metrics = Metrics()
        if spec.record_history:
            self.history = HistoryRecorder()

        self.registry = FunctionRegistry()
        if app is not None:
            self.registry.register_all(app.specs())
        else:
            for fn_spec in functions:
                self.registry.register(fn_spec)

        # Stores: shard 0 keeps the seed's anonymous KVStore() so one-shard
        # deployments are indistinguishable from the hand-rolled builders.
        self.stores = [
            KVStore() if k == 0 else KVStore(name=f"primary-shard{k}")
            for k in range(spec.shards)
        ]
        shard_map = spec.resolved_shard_map()
        self._shard_map = shard_map
        seed_view = self.stores[0] if spec.shards == 1 else _ShardedSeedWriter(self)
        if app is not None:
            app.seed(seed_view, self.streams, app.context)
        elif seed_data is not None:
            seed_data(seed_view)

        if cfg.replicated:
            from ..raft import RaftCluster

            self.raft = RaftCluster(sim, self.streams)
            self.raft.start()
            if spec.raft_prewarm_ms > 0:
                sim.run(until=spec.raft_prewarm_ms)  # elect a leader first

        for k in range(spec.shards):
            name = "lvi-server" if k == 0 else f"lvi-server-{k}"
            self.servers.append(
                LVIServer(
                    sim, self.net, self.registry, self.stores[k], cfg,
                    self.streams, self.metrics, name=name,
                    region=spec.primary_region,
                    raft_cluster=self.raft if k == 0 else None, shard=k,
                )
            )
        if spec.shards > 1 or cfg.conflict_detection:
            self.router = ShardRouter(shard_map, [s.name for s in self.servers])
        if cfg.conflict_detection:
            # In-network conflict detection: one shared detector sits on
            # the request path of every runtime and server (writers enroll
            # before sending; servers re-probe at arrival).  Read replicas
            # share the shard's store object but own no locks or intents —
            # they only serve lock-skipped reads.  A replicated (Raft)
            # deployment keeps a single serving instance per shard: its
            # lock records live in the Raft log, which replicas bypass.
            detector = ConflictDetector(metrics=self.metrics)
            self.router.detector = detector
            n_replicas = 1 if cfg.replicated else max(1, cfg.read_replicas)
            for k in range(spec.shards):
                primary = self.servers[k]
                primary.detector = detector
                rotation = [primary.name]
                for i in range(1, n_replicas):
                    r = LVIServer(
                        sim, self.net, self.registry, self.stores[k], cfg,
                        self.streams, self.metrics,
                        name=f"{primary.name}-r{i}",
                        region=spec.primary_region, shard=k, replica=True,
                    )
                    r.detector = detector
                    self.replicas.append(r)
                    rotation.append(r.name)
                self.router.register_read_endpoints(k, rotation)

        pop_regions = spec.resolved_pop_regions()
        if spec.mesh is not None and spec.mesh.enabled:
            self.mesh = CacheMesh(
                sim, self.net, spec.mesh, list(spec.regions), self.metrics
            )
        for region in pop_regions:
            if self.mesh is not None:
                cache = self.mesh.make_pop(region, persistent=spec.persistent_caches)
            else:
                cache = NearUserCache(region, persistent=spec.persistent_caches)
            if spec.warm_caches:
                for store in self.stores:
                    _warm_cache(cache, store)
            self.caches[region] = cache
            self.runtimes[region] = NearUserRuntime(
                sim, self.net, region, cache, self.registry, cfg,
                self.streams, self.metrics, router=self.router,
                pop=self.mesh.pop(region) if self.mesh is not None else None,
            )
        if self.mesh is not None:
            # After every runtime: gossip endpoints must not perturb the
            # endpoint-name counters the runtimes draw from.
            self.mesh.start()

        self.assignments = _assign_clients(spec, latency, pop_regions)
        if spec.routing_active:
            # Surface every routing decision; seed-default specs skip this
            # so existing artifacts stay byte-identical.
            for a in self.assignments.values():
                self.metrics.record_tagged(
                    "routing.assign_rtt_ms",
                    a.client_rtt_ms if a.client_rtt_ms is not None else 1.0,
                    client=a.client, pop=a.pop, policy=a.policy, mode=a.mode,
                )
                self.metrics.incr(f"routing.assigned.{a.mode}")

        if spec.fault_plan is not None:
            from ..faults.scheduler import FaultScheduler

            plan = spec.fault_plan
            plan.validate()
            if plan.replicated and not cfg.replicated:
                raise FaultConfigError(
                    f"plan {plan.name!r} requires a replicated deployment"
                )
            self.scheduler = FaultScheduler(
                sim, self.net, plan, targets=self.fault_targets(),
                metrics=self.metrics,
            )
            self.scheduler.start()
        return self

    # -- convenience accessors ---------------------------------------------

    @property
    def server(self) -> LVIServer:
        """Shard 0's server (the seed's single ``lvi-server``)."""
        return self.servers[0]

    @property
    def store(self) -> KVStore:
        """Shard 0's store (the seed's single primary store)."""
        return self.stores[0]

    @property
    def nshards(self) -> int:
        return self.spec.shards

    def shard_of(self, table: str, key: str) -> int:
        return self._shard_map.shard_of(table, key)

    def store_for(self, table: str, key: str) -> KVStore:
        return self.stores[self.shard_of(table, key)]

    def get_or_none(self, table: str, key: str):
        """Shard-routed read of the authoritative primary state."""
        return self.store_for(table, key).get_or_none(table, key)

    def pending_intents(self) -> List[Any]:
        """Unsettled write intents across every shard (reconciliation)."""
        return [i for server in self.servers for i in server.intents.pending()]

    def runtime_for_client(self, region: str) -> NearUserRuntime:
        """The runtime serving clients homed in ``region``, per the spec's
        assignment policy (their own PoP under the seed default)."""
        return self.runtimes[self.assignments[region].pop]

    def client_pop_rtt_ms(self, region: str) -> Optional[float]:
        """Client↔assigned-PoP round trip to model in the workload layer;
        ``None`` keeps the seed's same-region default."""
        return self.assignments[region].client_rtt_ms

    def fault_targets(self) -> Dict[str, Any]:
        """Crash/restartable objects, keyed the way CrashWindows name them."""
        targets: Dict[str, Any] = {s.name: s for s in self.servers}
        if self.raft is not None:
            targets.update(self.raft.nodes)
            targets["raft-leader"] = _RaftLeaderTarget(self.raft)
        if self.mesh is not None:
            targets.update(self.mesh.fault_targets())
        return targets


class _RaftLeaderTarget:
    """Crash target that resolves to *whichever node leads at crash time*.

    A ``CrashWindow("raft-leader", ...)`` cannot name a concrete node up
    front: which replica wins the initial election depends on the seed
    and on any faults already injected.  The scheduler binds targets at
    arm time but only calls ``crash()``/``recover()`` when the window
    fires, so this proxy defers the leadership lookup to that instant.
    The node chosen by ``crash()`` is remembered so the paired restart
    revives the same replica (there may be a *new* leader by then).
    """

    def __init__(self, raft) -> None:
        self._raft = raft
        self._crashed = None

    def crash(self) -> None:
        node = self._raft.leader()
        if node is None:
            # Mid-election (e.g. an earlier fault already took the leader
            # down): fall back to the lowest-named live node so the window
            # still perturbs the quorum deterministically.
            live = [n for n in self._raft.nodes.values() if n._alive]
            if not live:
                return
            node = min(live, key=lambda n: n.node_id)
        self._crashed = node
        node.crash()

    def recover(self) -> None:
        if self._crashed is not None:
            self._crashed.recover()
            self._crashed = None


def _assign_clients(
    spec: TopologySpec, latency: LatencyTable, pops: Sequence[str]
) -> Dict[str, PopAssignment]:
    """Map every client region to a PoP under the spec's policy.

    RTT between a client and its own-region PoP is the seed's 1 ms hop
    (``client_rtt_ms=None`` → workload default), not the 7 ms intra-region
    service RTT — users sit next to their PoP, not across the datacenter
    fabric.  Ties on RTT break by region name so assignment is
    deterministic under any dict ordering.
    """
    policy = spec.assignment
    primary = spec.primary_region

    def pop_rtt(client: str, pop: str) -> float:
        return 0.0 if client == pop else latency.rtt(client, pop)

    def nearest(client: str) -> str:
        return min(pops, key=lambda p: (pop_rtt(client, p), p))

    out: Dict[str, PopAssignment] = {}
    for client in spec.regions:
        if policy == "home-region":
            out[client] = PopAssignment(client, client, "home", policy, None)
            continue
        if policy == "direct":
            rtt = None if client == primary else latency.rtt(client, primary)
            out[client] = PopAssignment(client, primary, "direct", policy, rtt)
            continue
        pop = nearest(client)
        rtt_ms = pop_rtt(client, pop)
        if policy == "tiered" and pop != client and rtt_ms > spec.tiered_threshold_ms:
            # The nearest PoP is too far to be worth the speculative hop:
            # fall back to the direct-to-primary tier.
            rtt = None if client == primary else latency.rtt(client, primary)
            out[client] = PopAssignment(client, primary, "direct", policy, rtt)
            continue
        mode = "home" if pop == client else "edge"
        out[client] = PopAssignment(
            client, pop, mode, policy, None if pop == client else rtt_ms
        )
    return out


def _warm_cache(cache: NearUserCache, store: KVStore) -> None:
    """Copy a primary store's current contents into a near-user cache —
    the steady-state starting point (the paper's runs measure warmed
    deployments; cold-start is the §3.2 bootstrap ablation).  Protocol
    tables (``_radical*``) never enter caches."""
    for table in store.table_names():
        if table.startswith("_radical"):
            continue
        for key, item in store.scan(table):
            cache.install(table, key, item)
