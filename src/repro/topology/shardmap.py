"""Key-space partitioning for the sharded near-storage tier.

A :class:`ShardMap` assigns every ``(table, key)`` pair to exactly one
shard.  Two concrete strategies are provided:

* :class:`HashShardMap` — a stable content hash of ``table/key`` modulo
  the shard count.  The hash is derived from SHA-1 (not Python's
  randomized ``hash``), so placement is identical across processes and
  runs — a requirement for the simulator's determinism guarantees.
* :class:`RangeShardMap` — explicit lexicographic split points over
  ``(table, key)``, for workloads whose key space has meaningful locality
  (a range map keeps co-accessed neighbours on one shard, trading balance
  for fewer cross-shard transactions).

The near-user runtime only needs ``shard_of`` plus the shard count; it
never sees stores or servers directly — the :class:`ShardRouter` adds the
shard → endpoint-name mapping on top.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Key = Tuple[str, str]

__all__ = ["ShardMap", "HashShardMap", "RangeShardMap", "ShardRouter", "DirtySet", "ConflictDetector"]


class ShardMap:
    """Abstract placement policy: ``(table, key) -> shard index``."""

    def __init__(self, nshards: int):
        if nshards < 1:
            raise ValueError(f"shard count must be >= 1, got {nshards}")
        self.nshards = nshards

    def shard_of(self, table: str, key: str) -> int:
        raise NotImplementedError

    def split(self, keys: Iterable[Key]) -> Dict[int, List[Key]]:
        """Group keys by owning shard, preserving input order per group."""
        groups: Dict[int, List[Key]] = {}
        for table, key in keys:
            groups.setdefault(self.shard_of(table, key), []).append((table, key))
        return groups


class HashShardMap(ShardMap):
    """Stable-hash placement: uniform balance, no locality."""

    def shard_of(self, table: str, key: str) -> int:
        if self.nshards == 1:
            return 0
        digest = hashlib.sha1(f"{table}/{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.nshards


class RangeShardMap(ShardMap):
    """Lexicographic range placement over ``(table, key)``.

    ``boundaries`` are N-1 sorted split points for N shards: shard ``i``
    owns every key strictly below ``boundaries[i]`` and at or above
    ``boundaries[i-1]``.
    """

    def __init__(self, boundaries: Sequence[Key]):
        super().__init__(len(boundaries) + 1)
        bounds = [tuple(b) for b in boundaries]
        if bounds != sorted(bounds):
            raise ValueError(f"range boundaries must be sorted, got {bounds}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"range boundaries must be distinct, got {bounds}")
        self.boundaries: List[Key] = bounds

    def shard_of(self, table: str, key: str) -> int:
        return bisect.bisect_right(self.boundaries, (table, key))


class DirtySet:
    """In-flight write facts, per shard, keyed by execution id.

    Entries are *instantiated write constraints* (duck-typed: anything
    with ``overlaps(other)``, normally
    :class:`~repro.analysis.ir.summary.KeyFact`).  The lifecycle is
    conservative by construction:

    * **enroll** strictly before the writer's request is sent — a probe
      can then never miss a writer whose writes are not yet durably
      applied;
    * **settle** only once the writes' fate is known (followup applied or
      discarded, backup response received, cross-shard decision acked);
    * **leak** when the outcome is unknowable (lost followup, exhausted
      RPC, lost decision ack): the entry is *kept* forever, so later
      probes stay sound, and the imbalance is observable via
      :meth:`stats` — the chaos harness asserts
      ``depth == leaked`` once the system is quiescent.
    """

    def __init__(self):
        self._entries: Dict[str, Dict[int, Tuple]] = {}  # eid -> shard -> facts
        self._leaked: set = set()
        self.enrolled_total = 0
        self.settled_total = 0
        self.leaked_total = 0

    def enroll(self, shard: int, execution_id: str, facts: Sequence) -> None:
        shards = self._entries.setdefault(execution_id, {})
        if shard not in shards:
            self.enrolled_total += 1
        shards[shard] = tuple(facts)

    def settle(self, execution_id: str) -> int:
        """Remove every shard's entry for one execution; returns how many
        entries were dropped (0 when unknown or already settled)."""
        if execution_id in self._leaked:
            return 0  # a leaked entry's writes have no known fate: keep it
        shards = self._entries.pop(execution_id, None)
        if not shards:
            return 0
        self.settled_total += len(shards)
        return len(shards)

    def leak(self, execution_id: str) -> int:
        """Mark one execution's entries as permanently in flight."""
        if execution_id in self._leaked or execution_id not in self._entries:
            return 0
        self._leaked.add(execution_id)
        leaked = len(self._entries[execution_id])
        self.leaked_total += leaked
        return leaked

    def probe(self, shard: int, facts: Sequence) -> bool:
        """May any in-flight writer on ``shard`` touch a key one of
        ``facts`` admits?"""
        for shards in self._entries.values():
            enrolled = shards.get(shard)
            if not enrolled:
                continue
            for theirs in enrolled:
                for mine in facts:
                    if theirs.overlaps(mine):
                        return True
        return False

    def depth(self, shard: int) -> int:
        return sum(1 for shards in self._entries.values() if shard in shards)

    @property
    def total_depth(self) -> int:
        return sum(len(shards) for shards in self._entries.values())

    def stats(self) -> Dict[str, int]:
        return {
            "enrolled": self.enrolled_total,
            "settled": self.settled_total,
            "leaked": self.leaked_total,
            "depth": self.total_depth,
        }

    @property
    def balanced(self) -> bool:
        """Every enrolled entry was either settled or deliberately leaked
        — the quiescent-state invariant the chaos matrix asserts."""
        return (
            self.total_depth == self.leaked_total
            and self.enrolled_total == self.settled_total + self.leaked_total
        )

    def reset(self) -> None:
        """Drop all entries and counters (parity with the lock-table
        reset a crashed server performs on its own state)."""
        self._entries.clear()
        self._leaked.clear()
        self.enrolled_total = self.settled_total = self.leaked_total = 0


class ConflictDetector:
    """The in-network conflict-detection element (Harmonia-style), shared
    by the near-user runtimes and the shard's servers — both sit on the
    request path through it, which is what makes the server-side re-probe
    at arrival authoritative.

    Metrics follow the zero-cost convention: with ``metrics`` absent or
    disabled, every recording is short-circuited.
    """

    def __init__(self, metrics=None):
        self.dirty = DirtySet()
        self.metrics = metrics

    def _record_depth(self, shard: int) -> None:
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.record_tagged(
                "router.dirty_depth", self.dirty.depth(shard), shard=str(shard)
            )

    def enroll(self, shards: Sequence[int], execution_id: str, facts: Sequence) -> None:
        for shard in shards:
            self.dirty.enroll(shard, execution_id, facts)
            if self.metrics is not None and self.metrics.enabled:
                self.metrics.incr("router.enrolled")
            self._record_depth(shard)

    def settle(self, execution_id: str) -> None:
        removed = self.dirty.settle(execution_id)
        if removed and self.metrics is not None and self.metrics.enabled:
            self.metrics.incr("router.settled", removed)

    def leak(self, execution_id: str) -> None:
        leaked = self.dirty.leak(execution_id)
        if leaked and self.metrics is not None and self.metrics.enabled:
            self.metrics.incr("router.dirty_leaked", leaked)

    def probe(self, shard: int, facts: Sequence) -> bool:
        hit = self.dirty.probe(shard, facts)
        if hit and self.metrics is not None and self.metrics.enabled:
            self.metrics.incr("router.conflict_hit")
        return hit


class ShardRouter:
    """A shard map plus the endpoint name of each shard's LVI server.

    This is the only sharding interface the near-user runtime consumes:
    it keeps ``core`` free of any dependency on ``topology`` construction
    (the runtime accepts any object with this shape).

    With conflict detection enabled the router additionally carries the
    :class:`ConflictDetector` (``detector``) and, per shard, the rotation
    of endpoints allowed to serve lock-skipped reads (the primary plus
    any read replicas).
    """

    def __init__(self, shard_map: ShardMap, endpoints: Sequence[str]):
        if len(endpoints) != shard_map.nshards:
            raise ValueError(
                f"{shard_map.nshards} shard(s) but {len(endpoints)} endpoint(s)"
            )
        self.shard_map = shard_map
        self.endpoints = tuple(endpoints)
        self.detector: Optional[ConflictDetector] = None
        self._read_endpoints: Dict[int, Tuple[str, ...]] = {}
        self._read_rr: Dict[int, int] = {}

    @property
    def nshards(self) -> int:
        return self.shard_map.nshards

    def shard_of(self, table: str, key: str) -> int:
        return self.shard_map.shard_of(table, key)

    def endpoint(self, shard: int) -> str:
        return self.endpoints[shard]

    def split(self, keys: Iterable[Key]) -> Dict[int, List[Key]]:
        return self.shard_map.split(keys)

    def register_read_endpoints(self, shard: int, names: Sequence[str]) -> None:
        """Endpoints allowed to serve lock-skipped reads for ``shard`` —
        the primary plus its read replicas, rotated round-robin."""
        self._read_endpoints[shard] = tuple(names)
        self._read_rr[shard] = 0

    def read_endpoint(self, shard: int) -> str:
        """Deterministic round-robin over the shard's read rotation;
        falls back to the primary when no rotation was registered."""
        rotation = self._read_endpoints.get(shard)
        if not rotation:
            return self.endpoints[shard]
        idx = self._read_rr[shard]
        self._read_rr[shard] = (idx + 1) % len(rotation)
        return rotation[idx]

    def static_shard(self, summary) -> Optional[int]:
        """Shard of a function whose static summary proves one fully
        constant key (:class:`~repro.analysis.ir.summary.FunctionSummary`
        with ``static_key`` set) — known at registration time, before any
        invocation runs f^rw.  ``None`` when the key depends on inputs."""
        static_key = getattr(summary, "static_key", None)
        if static_key is None:
            return None
        table, key = static_key
        return self.shard_of(table, key)
