"""Key-space partitioning for the sharded near-storage tier.

A :class:`ShardMap` assigns every ``(table, key)`` pair to exactly one
shard.  Two concrete strategies are provided:

* :class:`HashShardMap` — a stable content hash of ``table/key`` modulo
  the shard count.  The hash is derived from SHA-1 (not Python's
  randomized ``hash``), so placement is identical across processes and
  runs — a requirement for the simulator's determinism guarantees.
* :class:`RangeShardMap` — explicit lexicographic split points over
  ``(table, key)``, for workloads whose key space has meaningful locality
  (a range map keeps co-accessed neighbours on one shard, trading balance
  for fewer cross-shard transactions).

The near-user runtime only needs ``shard_of`` plus the shard count; it
never sees stores or servers directly — the :class:`ShardRouter` adds the
shard → endpoint-name mapping on top.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Key = Tuple[str, str]

__all__ = ["ShardMap", "HashShardMap", "RangeShardMap", "ShardRouter"]


class ShardMap:
    """Abstract placement policy: ``(table, key) -> shard index``."""

    def __init__(self, nshards: int):
        if nshards < 1:
            raise ValueError(f"shard count must be >= 1, got {nshards}")
        self.nshards = nshards

    def shard_of(self, table: str, key: str) -> int:
        raise NotImplementedError

    def split(self, keys: Iterable[Key]) -> Dict[int, List[Key]]:
        """Group keys by owning shard, preserving input order per group."""
        groups: Dict[int, List[Key]] = {}
        for table, key in keys:
            groups.setdefault(self.shard_of(table, key), []).append((table, key))
        return groups


class HashShardMap(ShardMap):
    """Stable-hash placement: uniform balance, no locality."""

    def shard_of(self, table: str, key: str) -> int:
        if self.nshards == 1:
            return 0
        digest = hashlib.sha1(f"{table}/{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.nshards


class RangeShardMap(ShardMap):
    """Lexicographic range placement over ``(table, key)``.

    ``boundaries`` are N-1 sorted split points for N shards: shard ``i``
    owns every key strictly below ``boundaries[i]`` and at or above
    ``boundaries[i-1]``.
    """

    def __init__(self, boundaries: Sequence[Key]):
        super().__init__(len(boundaries) + 1)
        bounds = [tuple(b) for b in boundaries]
        if bounds != sorted(bounds):
            raise ValueError(f"range boundaries must be sorted, got {bounds}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"range boundaries must be distinct, got {bounds}")
        self.boundaries: List[Key] = bounds

    def shard_of(self, table: str, key: str) -> int:
        return bisect.bisect_right(self.boundaries, (table, key))


class ShardRouter:
    """A shard map plus the endpoint name of each shard's LVI server.

    This is the only sharding interface the near-user runtime consumes:
    it keeps ``core`` free of any dependency on ``topology`` construction
    (the runtime accepts any object with this shape).
    """

    def __init__(self, shard_map: ShardMap, endpoints: Sequence[str]):
        if len(endpoints) != shard_map.nshards:
            raise ValueError(
                f"{shard_map.nshards} shard(s) but {len(endpoints)} endpoint(s)"
            )
        self.shard_map = shard_map
        self.endpoints = tuple(endpoints)

    @property
    def nshards(self) -> int:
        return self.shard_map.nshards

    def shard_of(self, table: str, key: str) -> int:
        return self.shard_map.shard_of(table, key)

    def endpoint(self, shard: int) -> str:
        return self.endpoints[shard]

    def split(self, keys: Iterable[Key]) -> Dict[int, List[Key]]:
        return self.shard_map.split(keys)

    def static_shard(self, summary) -> Optional[int]:
        """Shard of a function whose static summary proves one fully
        constant key (:class:`~repro.analysis.ir.summary.FunctionSummary`
        with ``static_key`` set) — known at registration time, before any
        invocation runs f^rw.  ``None`` when the key depends on inputs."""
        static_key = getattr(summary, "static_key", None)
        if static_key is None:
            return None
        table, key = static_key
        return self.shard_of(table, key)
