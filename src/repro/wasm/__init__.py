"""Deterministic "wasm-lite" sandbox: compiler, IR, interpreter, intrinsics.

Stands in for the paper's Rust→WebAssembly→WasmTime pipeline (§3.4, §4):
application functions are written in a restricted Python subset, compiled
to a stack IR with explicit storage opcodes, and executed deterministically
with gas metering and a whitelisted host environment.
"""

from .compiler import BUILTINS, METHODS, compile_callable, compile_source
from .intrinsics import Intrinsic, REGISTRY, banned_names, lookup, register_intrinsic
from .ir import Instr, Op, WasmFunction
from .vm import DEFAULT_GAS_LIMIT, DictEnv, ExecutionTrace, HostEnv, VM


def optimize_function(func: WasmFunction):
    """Optimize a compiled function (entry point to the IR optimizer).

    Returns ``(optimized, report)``; see
    :func:`repro.analysis.ir.optimizer.optimize`.  Imported lazily because
    the analysis package sits above wasm in the layering.
    """
    from ..analysis.ir import optimize

    return optimize(func)


__all__ = [
    "BUILTINS",
    "DEFAULT_GAS_LIMIT",
    "DictEnv",
    "ExecutionTrace",
    "HostEnv",
    "Instr",
    "Intrinsic",
    "METHODS",
    "Op",
    "REGISTRY",
    "VM",
    "WasmFunction",
    "banned_names",
    "compile_callable",
    "compile_source",
    "lookup",
    "optimize_function",
    "register_intrinsic",
]
