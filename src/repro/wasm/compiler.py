"""Compiler from a restricted, deterministic Python subset to wasm-lite IR.

The paper's applications are written in Rust and compiled to the
``wasm32-unknown-unknown`` target; determinism comes from the missing
imports (no clock, no randomness) plus WasmTime's deterministic
configuration (§4).  Here, application functions are written in a small
Python subset and compiled — by parsing with :mod:`ast` — to the stack IR
of :mod:`repro.wasm.ir`.  The compiler enforces the determinism contract
syntactically:

* no imports, no attribute access (except whitelisted method calls),
* only whitelisted builtins and registered *deterministic* intrinsics,
* referencing a known non-deterministic intrinsic (``now``, ``random_int``,
  ``uuid``) is rejected at compile time with
  :class:`~repro.errors.NonDeterminismError`.

Storage accesses appear as calls to ``db_get(table, key)`` and
``db_put(table, key, value)`` and compile to dedicated opcodes, giving the
static analyzer (and the VM's host interposition) an explicit handle on
every access — the property §3.3 relies on serverless statelessness for.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Callable, Dict, List, Optional, Union

from ..errors import CompileError, NonDeterminismError
from .intrinsics import REGISTRY, banned_names
from .ir import Instr, Op, WasmFunction

__all__ = ["compile_source", "compile_callable", "BUILTINS", "METHODS"]

#: Builtins callable from sandboxed code (all pure and deterministic).
#: ``busy(n)`` charges n gas and models pure computation (rendering,
#: serialisation, ranking) — the VM's cost measure for work that has no
#: Python-visible effect; the f^rw latency model divides sliced gas by
#: total gas, so representative compute costs matter.
BUILTINS = (
    "len", "str", "int", "float", "bool", "abs", "min", "max", "sum",
    "sorted", "range", "round", "list", "dict", "busy",
)

#: Whitelisted method names, by receiver type family (enforced at runtime).
METHODS = (
    # list
    "append", "extend", "pop", "insert", "remove", "index", "count",
    "sort", "reverse", "copy",
    # dict
    "get", "keys", "values", "items", "setdefault",
    # str
    "lower", "upper", "split", "join", "strip", "startswith", "endswith",
    "replace", "find", "zfill",
)

_BINOPS: Dict[type, str] = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
}
_UNARY: Dict[type, str] = {ast.USub: "-", ast.UAdd: "+", ast.Not: "not"}
_CMPOPS: Dict[type, str] = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=", ast.In: "in", ast.NotIn: "not in",
    ast.Is: "is", ast.IsNot: "is not",
}

#: Storage-access call names (also recognised by the analyzer).
DB_GET_NAME = "db_get"
DB_PUT_NAME = "db_put"
RW_READ_NAME = "__rw_read"
RW_WRITE_NAME = "__rw_write"
#: External-service call (§3.5): external("payments", payload).
EXTERNAL_NAME = "external"


def compile_source(source: str, kind: str = "f") -> WasmFunction:
    """Compile a module containing exactly one function definition.

    Returns a :class:`WasmFunction`.  Raises :class:`CompileError` for
    anything outside the subset and :class:`NonDeterminismError` for
    references to banned intrinsics.
    """
    source = textwrap.dedent(source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc}") from exc
    defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(defs) != 1 or len(tree.body) != 1:
        raise CompileError("source must contain exactly one function definition")
    fn = defs[0]
    params = _param_names(fn)
    compiler = _Codegen(fn.name, params, source)
    compiler.compile_body(fn.body)
    return WasmFunction(
        name=fn.name,
        params=params,
        instructions=compiler.code,
        source=source,
        kind=kind,
    )


def compile_callable(fn: Callable, kind: str = "f") -> WasmFunction:
    """Compile a plain Python function object by reading its source."""
    import inspect

    return compile_source(inspect.getsource(fn), kind=kind)


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs or args.defaults:
        raise CompileError(f"{fn.name}: only plain positional parameters are supported")
    return [a.arg for a in args.args]


class _Codegen:
    """Single-pass code generator with jump backpatching."""

    def __init__(self, name: str, params: List[str], source: str):
        self.name = name
        self.params = set(params)
        self.source = source
        self.code: List[Instr] = []
        self._loop_stack: List[Dict[str, List[int]]] = []
        self._hidden = 0
        self._banned = set(banned_names())

    # -- helpers -------------------------------------------------------------

    def _emit(self, op: str, arg=None) -> int:
        self.code.append(Instr(op, arg))
        return len(self.code) - 1

    def _patch(self, pc: int, target: int) -> None:
        self.code[pc] = Instr(self.code[pc].op, target)

    def _here(self) -> int:
        return len(self.code)

    def _fresh(self, tag: str) -> str:
        self._hidden += 1
        return f".{tag}{self._hidden}"

    def _err(self, node: ast.AST, message: str) -> CompileError:
        line = getattr(node, "lineno", "?")
        return CompileError(f"{self.name}:{line}: {message}")

    # -- statements ------------------------------------------------------------

    def compile_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)
        # Implicit `return None` if control falls off the end.
        self._emit(Op.PUSH, None)
        self._emit(Op.RETURN)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Return):
            if node.value is None:
                self._emit(Op.PUSH, None)
            else:
                self.expr(node.value)
            self._emit(Op.RETURN)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
            self._emit(Op.POP)
        elif isinstance(node, ast.Pass):
            pass
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise self._err(node, "break outside loop")
            self._loop_stack[-1]["breaks"].append(self._emit(Op.JUMP, None))
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise self._err(node, "continue outside loop")
            self._loop_stack[-1]["continues"].append(self._emit(Op.JUMP, None))
        else:
            raise self._err(node, f"unsupported statement {type(node).__name__}")

    def _assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise self._err(node, "chained assignment is not supported")
        target = node.targets[0]
        if isinstance(target, ast.Name):
            self.expr(node.value)
            self._emit(Op.STORE, target.id)
        elif isinstance(target, ast.Subscript):
            self.expr(target.value)
            self._index_expr(target)
            self.expr(node.value)
            self._emit(Op.STORE_INDEX)
        else:
            raise self._err(node, f"unsupported assignment target {type(target).__name__}")

    def _aug_assign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.target, ast.Name):
            raise self._err(
                node, "augmented assignment only supports simple names (use a temporary)"
            )
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise self._err(node, f"unsupported operator {type(node.op).__name__}")
        self._emit(Op.LOAD, node.target.id)
        self.expr(node.value)
        self._emit(Op.BINOP, op)
        self._emit(Op.STORE, node.target.id)

    def _if(self, node: ast.If) -> None:
        self.expr(node.test)
        jif = self._emit(Op.JUMP_IF_FALSE, None)
        for stmt in node.body:
            self.stmt(stmt)
        if node.orelse:
            jend = self._emit(Op.JUMP, None)
            self._patch(jif, self._here())
            for stmt in node.orelse:
                self.stmt(stmt)
            self._patch(jend, self._here())
        else:
            self._patch(jif, self._here())

    def _while(self, node: ast.While) -> None:
        if node.orelse:
            raise self._err(node, "while/else is not supported")
        start = self._here()
        self.expr(node.test)
        jexit = self._emit(Op.JUMP_IF_FALSE, None)
        self._loop_stack.append({"breaks": [], "continues": []})
        for stmt in node.body:
            self.stmt(stmt)
        self._emit(Op.JUMP, start)
        frame = self._loop_stack.pop()
        end = self._here()
        self._patch(jexit, end)
        for pc in frame["breaks"]:
            self._patch(pc, end)
        for pc in frame["continues"]:
            self._patch(pc, start)

    def _for(self, node: ast.For) -> None:
        # Desugar `for x in seq: body` into an indexed while loop over a
        # list materialisation of seq, using hidden locals.
        if node.orelse:
            raise self._err(node, "for/else is not supported")
        if not isinstance(node.target, ast.Name):
            raise self._err(node, "for target must be a simple name")
        seq = self._fresh("seq")
        idx = self._fresh("idx")
        self.expr(node.iter)
        self._emit(Op.CALL, ("list", 1))
        self._emit(Op.STORE, seq)
        self._emit(Op.PUSH, 0)
        self._emit(Op.STORE, idx)
        start = self._here()
        self._emit(Op.LOAD, idx)
        self._emit(Op.LOAD, seq)
        self._emit(Op.CALL, ("len", 1))
        self._emit(Op.COMPARE, "<")
        jexit = self._emit(Op.JUMP_IF_FALSE, None)
        self._emit(Op.LOAD, seq)
        self._emit(Op.LOAD, idx)
        self._emit(Op.INDEX)
        self._emit(Op.STORE, node.target.id)
        self._loop_stack.append({"breaks": [], "continues": []})
        for stmt in node.body:
            self.stmt(stmt)
        frame = self._loop_stack.pop()
        incr = self._here()
        self._emit(Op.LOAD, idx)
        self._emit(Op.PUSH, 1)
        self._emit(Op.BINOP, "+")
        self._emit(Op.STORE, idx)
        self._emit(Op.JUMP, start)
        end = self._here()
        self._patch(jexit, end)
        for pc in frame["breaks"]:
            self._patch(pc, end)
        for pc in frame["continues"]:
            self._patch(pc, incr)

    # -- expressions ----------------------------------------------------------

    def expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            if node.value is not None and not isinstance(node.value, (int, float, str, bool)):
                raise self._err(node, f"unsupported constant {node.value!r}")
            self._emit(Op.PUSH, node.value)
        elif isinstance(node, ast.Name):
            if node.id in self._banned:
                raise NonDeterminismError(
                    f"{self.name}: reference to non-deterministic intrinsic {node.id!r}"
                )
            self._emit(Op.LOAD, node.id)
        elif isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise self._err(node, f"unsupported operator {type(node.op).__name__}")
            self.expr(node.left)
            self.expr(node.right)
            self._emit(Op.BINOP, op)
        elif isinstance(node, ast.UnaryOp):
            op = _UNARY.get(type(node.op))
            if op is None:
                raise self._err(node, f"unsupported unary {type(node.op).__name__}")
            self.expr(node.operand)
            self._emit(Op.UNARY, op)
        elif isinstance(node, ast.BoolOp):
            self._boolop(node)
        elif isinstance(node, ast.Compare):
            self._compare(node)
        elif isinstance(node, ast.IfExp):
            self.expr(node.test)
            jif = self._emit(Op.JUMP_IF_FALSE, None)
            self.expr(node.body)
            jend = self._emit(Op.JUMP, None)
            self._patch(jif, self._here())
            self.expr(node.orelse)
            self._patch(jend, self._here())
        elif isinstance(node, ast.Call):
            self._call(node)
        elif isinstance(node, ast.Subscript):
            self.expr(node.value)
            if isinstance(node.slice, ast.Slice):
                self._slice(node.slice)
            else:
                self._index_expr(node)
                self._emit(Op.INDEX)
        elif isinstance(node, ast.List):
            for elt in node.elts:
                self.expr(elt)
            self._emit(Op.BUILD_LIST, len(node.elts))
        elif isinstance(node, ast.Tuple):
            for elt in node.elts:
                self.expr(elt)
            self._emit(Op.BUILD_TUPLE, len(node.elts))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is None:
                    raise self._err(node, "dict unpacking is not supported")
                self.expr(key)
                self.expr(value)
            self._emit(Op.BUILD_DICT, len(node.keys))
        elif isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    if part.format_spec is not None or part.conversion not in (-1, 115):
                        raise self._err(node, "format specs are not supported in f-strings")
                    self.expr(part.value)
                else:
                    self.expr(part)
            self._emit(Op.FORMAT, len(node.values))
        elif isinstance(node, ast.Attribute):
            raise self._err(node, "attribute access is not supported (methods only)")
        else:
            raise self._err(node, f"unsupported expression {type(node).__name__}")

    def _index_expr(self, node: ast.Subscript) -> None:
        if isinstance(node.slice, ast.Slice):
            raise self._err(node, "slice assignment is not supported")
        self.expr(node.slice)

    def _slice(self, sl: ast.Slice) -> None:
        if sl.step is not None:
            raise self._err(sl, "slice steps are not supported")
        for bound in (sl.lower, sl.upper):
            if bound is None:
                self._emit(Op.PUSH, None)
            else:
                self.expr(bound)
        self._emit(Op.SLICE)

    def _boolop(self, node: ast.BoolOp) -> None:
        keep = Op.JUMP_IF_FALSE_KEEP if isinstance(node.op, ast.And) else Op.JUMP_IF_TRUE_KEEP
        jumps = []
        for i, value in enumerate(node.values):
            self.expr(value)
            if i < len(node.values) - 1:
                jumps.append(self._emit(keep, None))
                self._emit(Op.POP)
        end = self._here()
        for pc in jumps:
            self._patch(pc, end)

    def _compare(self, node: ast.Compare) -> None:
        if len(node.ops) != 1:
            raise self._err(node, "chained comparisons are not supported")
        op = _CMPOPS.get(type(node.ops[0]))
        if op is None:
            raise self._err(node, f"unsupported comparison {type(node.ops[0]).__name__}")
        self.expr(node.left)
        self.expr(node.comparators[0])
        self._emit(Op.COMPARE, op)

    def _call(self, node: ast.Call) -> None:
        if node.keywords:
            raise self._err(node, "keyword arguments are not supported")
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method not in METHODS:
                raise self._err(node, f"method {method!r} is not whitelisted")
            self.expr(node.func.value)
            for arg in node.args:
                self.expr(arg)
            self._emit(Op.METHOD, (method, len(node.args)))
            return
        if not isinstance(node.func, ast.Name):
            raise self._err(node, "only simple calls are supported")
        name = node.func.id
        argc = len(node.args)
        if name in self._banned:
            raise NonDeterminismError(
                f"{self.name}: call to non-deterministic intrinsic {name!r}"
            )
        if name == EXTERNAL_NAME:
            self._fixed_call(node, 2, Op.EXT_CALL)
        elif name == DB_GET_NAME:
            self._fixed_call(node, 2, Op.DB_GET)
        elif name == DB_PUT_NAME:
            self._fixed_call(node, 3, Op.DB_PUT)
        elif name == RW_READ_NAME:
            self._fixed_call(node, 2, Op.RW_READ)
        elif name == RW_WRITE_NAME:
            # Arity 2 normally; arity 3 when the sliced-away value still
            # contains nested accesses that must execute for recording.
            if argc not in (2, 3):
                raise self._err(node, "__rw_write takes 2 or 3 arguments")
            for arg in node.args:
                self.expr(arg)
            self._emit(Op.RW_WRITE, argc)
        elif name in REGISTRY:
            for arg in node.args:
                self.expr(arg)
            self._emit(Op.INTRINSIC, (name, argc))
        elif name in BUILTINS:
            for arg in node.args:
                self.expr(arg)
            self._emit(Op.CALL, (name, argc))
        else:
            raise self._err(node, f"unknown function {name!r}")

    def _fixed_call(self, node: ast.Call, arity: int, op: str) -> None:
        if len(node.args) != arity:
            raise self._err(node, f"{node.func.id} takes exactly {arity} arguments")
        for arg in node.args:
            self.expr(arg)
        self._emit(op)
