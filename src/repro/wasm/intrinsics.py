"""Host intrinsics available to wasm-lite functions.

Radical runs functions in a WasmTime sandbox whose imports are restricted
to deterministic facilities (§3.4): no timers, no randomness.  We reproduce
that contract with an explicit registry.  Deterministic intrinsics (hashing
for password checks, geo distance for the hotel app, ...) may be imported;
non-deterministic ones are *known to the compiler but banned* — referencing
them is a :class:`~repro.errors.NonDeterminismError` at registration time,
mirroring how Radical rejects functions that import them.

Intrinsic ``cost`` is the gas charged per call.  Gas is both the
non-termination guard and the basis of the f^rw latency model: an expensive
computation that does not feed any storage key (e.g. pbkdf2 in the login
functions) is sliced out of f^rw, so its gas disappears from the derived
function — which is exactly why login's f^rw is cheap while f is 213 ms.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..errors import VMTrap

__all__ = ["Intrinsic", "REGISTRY", "register_intrinsic", "lookup"]


@dataclass(frozen=True)
class Intrinsic:
    """A host function importable by sandboxed code."""

    name: str
    fn: Callable[..., Any]
    deterministic: bool
    cost: int = 1


REGISTRY: Dict[str, Intrinsic] = {}


def register_intrinsic(
    name: str, fn: Callable[..., Any], deterministic: bool = True, cost: int = 1
) -> Intrinsic:
    """Add an intrinsic to the global registry (idempotent re-registration
    with identical attributes is allowed for test convenience)."""
    intrinsic = Intrinsic(name, fn, deterministic, cost)
    existing = REGISTRY.get(name)
    if existing is not None and (existing.deterministic, existing.cost) != (
        deterministic,
        cost,
    ):
        raise ValueError(f"intrinsic {name!r} already registered with different attributes")
    REGISTRY[name] = intrinsic
    return intrinsic


def lookup(name: str) -> Intrinsic:
    """Fetch an intrinsic; raises :class:`VMTrap` for unknown names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise VMTrap(f"unknown intrinsic {name!r}") from None


# --------------------------------------------------------------------------
# Deterministic intrinsics used by the benchmark applications.
# --------------------------------------------------------------------------

#: PBKDF2 rounds actually computed.  The *simulated* expense of the login
#: check comes entirely from the intrinsic's gas cost (20000 below) — that
#: is what makes f 213 ms while f^rw stays cheap — so the host-side
#: iteration count only burns real wall-clock.  A handful of rounds keeps
#: the digest deterministic and collision-resistant-enough for the apps'
#: stored-credential checks without dominating the kernel benchmark.
_PBKDF2_ROUNDS = 8


def _pbkdf2_hash(password: str, salt: str) -> str:
    """Deterministic password hash standing in for an expensive KDF.

    The paper's login functions spend ~213 ms in a pbkdf2 check; the heavy
    gas cost on this intrinsic plays that role in the VM's cost model.
    """
    digest = hashlib.pbkdf2_hmac(
        "sha256", str(password).encode(), str(salt).encode(), _PBKDF2_ROUNDS
    )
    return digest.hex()


def _pbkdf2_verify(password: str, salt: str, expected: str) -> bool:
    return _pbkdf2_hash(password, salt) == expected


def _digest(text: str) -> str:
    """Short stable digest, used for content ids."""
    return hashlib.sha256(str(text).encode()).hexdigest()[:16]


def _distance_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine distance (hotel search's 'hotels near a location')."""
    r = 6371.0
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = math.radians(lat2 - lat1)
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2) ** 2
    return 2 * r * math.asin(math.sqrt(a))


def _score_text(text: str) -> int:
    """Deterministic 'ranking' signal used by feeds (stable pseudo-score)."""
    return int(hashlib.sha256(str(text).encode()).hexdigest()[:8], 16) % 1000


register_intrinsic("pbkdf2_hash", _pbkdf2_hash, deterministic=True, cost=20000)
register_intrinsic("pbkdf2_verify", _pbkdf2_verify, deterministic=True, cost=20000)
register_intrinsic("digest", _digest, deterministic=True, cost=50)
register_intrinsic("distance_km", _distance_km, deterministic=True, cost=20)
register_intrinsic("score_text", _score_text, deterministic=True, cost=30)


# --------------------------------------------------------------------------
# Non-deterministic intrinsics: present in the registry so the compiler can
# reject them by name with a clear error, never callable.
# --------------------------------------------------------------------------

def _banned(name: str) -> Callable[..., Any]:
    def fn(*_args: Any) -> Any:
        raise VMTrap(f"non-deterministic intrinsic {name!r} invoked")

    return fn


register_intrinsic("now", _banned("now"), deterministic=False)
register_intrinsic("random_int", _banned("random_int"), deterministic=False)
register_intrinsic("uuid", _banned("uuid"), deterministic=False)


def banned_names() -> Tuple[str, ...]:
    """Names the compiler must reject (§3.4's determinism contract)."""
    return tuple(sorted(n for n, i in REGISTRY.items() if not i.deterministic))
