"""Instruction set of the deterministic "wasm-lite" virtual machine.

The paper compiles application functions to WebAssembly and runs them under
WasmTime configured for determinism (§3.4, §4).  We reproduce the essential
properties — an explicit, analyzable, deterministic instruction stream with
storage accesses as visible intrinsic calls — with a small stack machine.
Functions are written in a restricted Python subset and compiled to this IR
by :mod:`repro.wasm.compiler`.

Storage accesses (``DB_GET``/``DB_PUT``) are first-class opcodes: they are
what the static analyzer searches for, and what the VM's host environment
interposes on, exactly as Radical's storage library interposes on each
access (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["Op", "Instr", "WasmFunction"]


class Op:
    """Opcode mnemonics.  One gas unit each unless noted."""

    PUSH = "push"              # push constant operand
    LOAD = "load"              # push local variable (operand: name)
    STORE = "store"            # pop into local variable (operand: name)
    POP = "pop"                # discard top of stack
    DUP = "dup"                # duplicate top of stack

    BINOP = "binop"            # operand: '+', '-', '*', '/', '//', '%', '**'
    UNARY = "unary"            # operand: '-', 'not', '+'
    COMPARE = "compare"        # operand: '==','!=','<','<=','>','>=','in','not in'

    JUMP = "jump"              # operand: target pc
    JUMP_IF_FALSE = "jif"      # pop; jump if falsy (operand: target pc)
    JUMP_IF_TRUE = "jit"       # pop; jump if truthy (operand: target pc)
    JUMP_IF_FALSE_KEEP = "jifk"  # peek; jump if falsy, keep value (for `and`)
    JUMP_IF_TRUE_KEEP = "jitk"   # peek; jump if truthy, keep value (for `or`)

    CALL = "call"              # operand: (builtin name, argc)
    INTRINSIC = "intrinsic"    # operand: (intrinsic name, argc); gas = cost
    METHOD = "method"          # operand: (method name, argc); receiver below args

    BUILD_LIST = "build_list"  # operand: element count
    BUILD_TUPLE = "build_tuple"
    BUILD_DICT = "build_dict"  # operand: pair count (key, value pushed in order)

    INDEX = "index"            # pop index, pop obj, push obj[index]
    STORE_INDEX = "store_index"  # pop value, index, obj; obj[index] = value
    SLICE = "slice"            # pop (hi, lo, obj) with None markers, push obj[lo:hi]

    DB_GET = "db_get"          # pop key, table; push value-or-None
    DB_PUT = "db_put"          # pop value, key, table; push None
    EXT_CALL = "ext_call"      # pop payload, service; push response (§3.5)
    RW_READ = "rw_read"        # f^rw only: record read; push cached value
    RW_WRITE = "rw_write"      # f^rw only: record write key; push None

    FORMAT = "format"          # pop n parts, push ''.join(str(part)...)

    RETURN = "return"          # pop return value; halt


@dataclass(frozen=True)
class Instr:
    """One instruction: opcode plus optional operand."""

    op: str
    arg: Any = None

    def __repr__(self) -> str:
        return f"{self.op}({self.arg!r})" if self.arg is not None else self.op


@dataclass
class WasmFunction:
    """A compiled function: parameter names plus an instruction vector.

    ``source`` is retained for the analyzer (which slices at the AST level)
    and for error messages.  ``kind`` distinguishes an application function
    (``"f"``) from its derived read/write-set function (``"frw"``).
    """

    name: str
    params: List[str]
    instructions: List[Instr]
    source: str = ""
    kind: str = "f"
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing (debugging and documentation)."""
        lines = [f"func {self.name}({', '.join(self.params)})  [{self.kind}]"]
        for pc, instr in enumerate(self.instructions):
            lines.append(f"  {pc:4d}  {instr!r}")
        return "\n".join(lines)

    def storage_opcodes(self) -> List[Tuple[int, str]]:
        """(pc, opcode) of every storage access instruction."""
        wanted = {Op.DB_GET, Op.DB_PUT, Op.RW_READ, Op.RW_WRITE}
        return [(pc, i.op) for pc, i in enumerate(self.instructions) if i.op in wanted]

    def may_write(self) -> bool:
        """True if the instruction stream contains any write opcode."""
        return any(i.op in (Op.DB_PUT, Op.RW_WRITE) for i in self.instructions)
