"""The deterministic stack-machine interpreter for wasm-lite functions.

The VM plays the role WasmTime plays in the paper (§4): it executes
compiled functions in a sandbox whose only window to the world is the
*host environment* — ``db_get``/``db_put`` for storage (wired to the
near-user cache during speculation and to primary storage during backup
execution / re-execution) and registered deterministic intrinsics.

Properties the protocol relies on and the VM enforces:

* **Determinism** — same function, same arguments, same storage responses
  ⇒ same writes and same result.  There is no clock, no randomness, and
  dict iteration order is insertion order (deterministic in Python).
* **Interposition** — every storage access is recorded in the execution
  trace; the LVI followup is built from the recorded writes, and tests
  compare recorded reads against the analyzer's predictions.
* **Gas metering** — a hard instruction budget turns non-termination into
  :class:`~repro.errors.GasExhausted` instead of a hung simulation; gas is
  also the VM's abstract cost measure, from which the f^rw latency model
  derives its slice ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from ..errors import GasExhausted, VMTrap
from .intrinsics import REGISTRY, lookup
from .ir import Instr, Op, WasmFunction

__all__ = ["HostEnv", "DictEnv", "ExecutionTrace", "VM", "DEFAULT_GAS_LIMIT"]

DEFAULT_GAS_LIMIT = 2_000_000

# Integer opcodes for the dispatch loop.  The public IR keeps readable
# string mnemonics (`Op`); execution translates each function once into
# (int, arg) pairs so the interpreter compares small ints instead of
# walking a string-equality chain, and skips the per-instruction
# ``instr.op``/``instr.arg`` attribute loads.  Numbered in rough hot-path
# frequency order, matching the if/elif chain in :meth:`VM.execute`.
(
    _LOAD, _PUSH, _COMPARE, _JUMP_IF_FALSE, _BINOP, _STORE, _INDEX, _JUMP,
    _JUMP_IF_TRUE, _DUP, _POP, _METHOD, _CALL, _FORMAT, _BUILD_LIST,
    _BUILD_DICT, _BUILD_TUPLE, _DB_GET, _DB_PUT, _RW_READ, _RW_WRITE,
    _INTRINSIC, _RETURN, _UNARY, _JUMP_IF_FALSE_KEEP, _JUMP_IF_TRUE_KEEP,
    _SLICE, _STORE_INDEX, _EXT_CALL, _UNKNOWN,
) = range(30)

_OPMAP = {
    Op.LOAD: _LOAD, Op.PUSH: _PUSH, Op.COMPARE: _COMPARE,
    Op.JUMP_IF_FALSE: _JUMP_IF_FALSE, Op.BINOP: _BINOP, Op.STORE: _STORE,
    Op.INDEX: _INDEX, Op.JUMP: _JUMP, Op.JUMP_IF_TRUE: _JUMP_IF_TRUE,
    Op.DUP: _DUP, Op.POP: _POP, Op.METHOD: _METHOD, Op.CALL: _CALL,
    Op.FORMAT: _FORMAT, Op.BUILD_LIST: _BUILD_LIST, Op.BUILD_DICT: _BUILD_DICT,
    Op.BUILD_TUPLE: _BUILD_TUPLE, Op.DB_GET: _DB_GET, Op.DB_PUT: _DB_PUT,
    Op.RW_READ: _RW_READ, Op.RW_WRITE: _RW_WRITE, Op.INTRINSIC: _INTRINSIC,
    Op.RETURN: _RETURN, Op.UNARY: _UNARY,
    Op.JUMP_IF_FALSE_KEEP: _JUMP_IF_FALSE_KEEP,
    Op.JUMP_IF_TRUE_KEEP: _JUMP_IF_TRUE_KEEP, Op.SLICE: _SLICE,
    Op.STORE_INDEX: _STORE_INDEX, Op.EXT_CALL: _EXT_CALL,
}


def _translate(func: WasmFunction) -> list:
    """Translate a function's instruction vector to (int opcode, arg)
    pairs, cached on the function object.  Unknown mnemonics become
    ``_UNKNOWN`` entries that trap at execution, preserving the original
    lazy unknown-opcode behaviour."""
    fast = [
        (_OPMAP.get(i.op, _UNKNOWN), i.arg if _OPMAP.get(i.op) is not None else i.op)
        for i in func.instructions
    ]
    func._fastcode = fast
    return fast


class HostEnv(Protocol):
    """What the sandbox can see of the outside world."""

    def db_get(self, table: str, key: str) -> Any:
        """Return the current value for (table, key), or None if absent."""
        ...

    def db_put(self, table: str, key: str, value: Any) -> None:
        """Write a value.  The VM records it; the env decides what
        'writing' means (buffering, applying to a cache, ...)."""
        ...


class DictEnv:
    """A trivial in-memory environment for tests and examples."""

    def __init__(self, data: Optional[Dict[Tuple[str, str], Any]] = None):
        self.data: Dict[Tuple[str, str], Any] = dict(data or {})

    def db_get(self, table: str, key: str) -> Any:
        return self.data.get((table, key))

    def db_put(self, table: str, key: str, value: Any) -> None:
        self.data[(table, key)] = value


@dataclass
class ExecutionTrace:
    """Everything observable about one sandboxed execution."""

    result: Any = None
    reads: List[Tuple[str, str]] = field(default_factory=list)
    writes: List[Tuple[str, str, Any]] = field(default_factory=list)
    external_calls: List[Tuple[str, int]] = field(default_factory=list)  # (service, seq)
    gas_used: int = 0

    def read_keys(self) -> List[Tuple[str, str]]:
        return list(self.reads)

    def write_keys(self) -> List[Tuple[str, str]]:
        return [(t, k) for (t, k, _v) in self.writes]


class VM:
    """Interpreter instance; stateless between :meth:`execute` calls."""

    def __init__(
        self,
        env: HostEnv,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        external: Optional[Callable[[str, Any, int], Any]] = None,
        access_hook: Optional[Callable[[str, str, str], None]] = None,
    ):
        self.env = env
        self.gas_limit = gas_limit
        # §3.5 external-service hook: (service, payload, call_seq) -> response.
        # Wired by Radical to the idempotency-keyed service hub; absent in
        # plain sandboxes, where external() traps.
        self.external = external
        # Interposition point for the rw-set soundness sanitizer: called as
        # ("read"|"write", table, key) at every storage opcode, in execution
        # order, before the trace records it.  Costs nothing when unset.
        self.access_hook = access_hook

    def execute(self, func: WasmFunction, args: List[Any]) -> ExecutionTrace:
        """Run ``func`` on ``args`` to completion; returns the trace.

        Raises :class:`VMTrap` on illegal operations and
        :class:`GasExhausted` when the budget runs out.
        """
        if len(args) != len(func.params):
            raise VMTrap(
                f"{func.name}: expected {len(func.params)} arguments, got {len(args)}"
            )
        trace = ExecutionTrace()
        locals_: Dict[str, Any] = dict(zip(func.params, args))
        stack: List[Any] = []
        try:
            code = func._fastcode
        except AttributeError:
            code = _translate(func)
        ncode = len(code)
        pc = 0
        gas = 0
        limit = self.gas_limit
        # Hot locals: one attribute load each for the whole execution.
        append = stack.append
        pop = stack.pop
        hook = self.access_hook
        env = self.env
        reads = trace.reads
        writes = trace.writes
        reg_get = REGISTRY.get

        while True:
            if pc >= ncode:
                raise VMTrap(f"{func.name}: fell off the end of the code")
            op, arg = code[pc]
            gas += 1
            if gas > limit:
                trace.gas_used = gas
                raise GasExhausted(f"{func.name}: exceeded {limit} gas at pc={pc}")
            pc += 1

            if op == _LOAD:
                try:
                    append(locals_[arg])
                except KeyError:
                    raise VMTrap(f"{func.name}: unbound variable {arg!r}") from None
            elif op == _PUSH:
                append(arg)
            elif op == _COMPARE:
                rhs = pop()
                lhs = pop()
                append(self._compare(func, arg, lhs, rhs))
            elif op == _JUMP_IF_FALSE:
                if not pop():
                    pc = arg
            elif op == _BINOP:
                rhs = pop()
                lhs = pop()
                append(self._binop(func, arg, lhs, rhs))
            elif op == _STORE:
                locals_[arg] = pop()
            elif op == _INDEX:
                index = pop()
                obj = pop()
                try:
                    append(obj[index])
                except (KeyError, IndexError, TypeError) as exc:
                    raise VMTrap(f"{func.name}: index failed: {exc}") from exc
            elif op == _JUMP:
                pc = arg
            elif op == _JUMP_IF_TRUE:
                if pop():
                    pc = arg
            elif op == _DUP:
                append(stack[-1])
            elif op == _POP:
                pop()
            elif op == _METHOD:
                name, argc = arg
                call_args = stack[len(stack) - argc:]
                del stack[len(stack) - argc:]
                receiver = pop()
                result, extra_gas = self._method(func, receiver, name, call_args)
                gas += extra_gas
                append(result)
            elif op == _CALL:
                name, argc = arg
                call_args = stack[len(stack) - argc:]
                del stack[len(stack) - argc:]
                result, extra_gas = self._builtin(func, name, call_args)
                gas += extra_gas
                append(result)
            elif op == _FORMAT:
                parts = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                append("".join(self._to_str(func, p) for p in parts))
            elif op == _BUILD_LIST:
                items = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                append(items)
            elif op == _BUILD_DICT:
                n2 = 2 * arg
                flat = stack[len(stack) - n2:]
                del stack[len(stack) - n2:]
                d = {}
                for i in range(0, n2, 2):
                    key = flat[i]
                    if not isinstance(key, (str, int, float, bool, tuple)):
                        raise VMTrap(f"{func.name}: unhashable dict key {key!r}")
                    d[key] = flat[i + 1]
                append(d)
            elif op == _BUILD_TUPLE:
                items = tuple(stack[len(stack) - arg:])
                del stack[len(stack) - arg:]
                append(items)
            elif op == _DB_GET or op == _RW_READ:
                key = pop()
                table = pop()
                if not (type(table) is str and type(key) is str):
                    self._check_key(func, table, key)
                if hook is not None:
                    hook("read", table, key)
                value = env.db_get(table, key)
                reads.append((table, key))
                append(value)
            elif op == _DB_PUT:
                value = pop()
                key = pop()
                table = pop()
                if not (type(table) is str and type(key) is str):
                    self._check_key(func, table, key)
                if hook is not None:
                    hook("write", table, key)
                env.db_put(table, key, value)
                writes.append((table, key, value))
                append(None)
            elif op == _RW_WRITE:
                if arg == 3:
                    pop()  # value evaluated only for its nested reads
                key = pop()
                table = pop()
                if not (type(table) is str and type(key) is str):
                    self._check_key(func, table, key)
                if hook is not None:
                    hook("write", table, key)
                writes.append((table, key, None))
                append(None)
            elif op == _INTRINSIC:
                name, argc = arg
                call_args = stack[len(stack) - argc:]
                del stack[len(stack) - argc:]
                intrinsic = reg_get(name)
                if intrinsic is None:
                    raise VMTrap(f"unknown intrinsic {name!r}")
                gas += intrinsic.cost
                try:
                    append(intrinsic.fn(*call_args))
                except VMTrap:
                    raise
                except Exception as exc:
                    raise VMTrap(f"{func.name}: intrinsic {name} failed: {exc}") from exc
            elif op == _RETURN:
                trace.result = pop()
                trace.gas_used = gas
                return trace
            elif op == _UNARY:
                value = pop()
                append(self._unary(func, arg, value))
            elif op == _JUMP_IF_FALSE_KEEP:
                if not stack[-1]:
                    pc = arg
            elif op == _JUMP_IF_TRUE_KEEP:
                if stack[-1]:
                    pc = arg
            elif op == _SLICE:
                hi = pop()
                lo = pop()
                obj = pop()
                if not isinstance(obj, (list, str, tuple)):
                    raise VMTrap(f"{func.name}: cannot slice {type(obj).__name__}")
                append(obj[lo:hi])
            elif op == _STORE_INDEX:
                value = pop()
                index = pop()
                obj = pop()
                self._store_index(func, obj, index, value)
            elif op == _EXT_CALL:
                payload = pop()
                service = pop()
                if not isinstance(service, str):
                    raise VMTrap(f"{func.name}: external service name must be a string")
                if self.external is None:
                    raise VMTrap(
                        f"{func.name}: no external services available in this sandbox"
                    )
                seq = len(trace.external_calls)
                try:
                    response = self.external(service, payload, seq)
                except VMTrap:
                    raise
                except Exception as exc:
                    raise VMTrap(
                        f"{func.name}: external service {service} failed: {exc}"
                    ) from exc
                trace.external_calls.append((service, seq))
                append(response)
            else:  # pragma: no cover - compiler emits only known opcodes
                raise VMTrap(f"{func.name}: unknown opcode {arg!r}")

    # -- operand helpers -----------------------------------------------------

    def _binop(self, func: WasmFunction, op: str, lhs: Any, rhs: Any) -> Any:
        try:
            if op == "+":
                if isinstance(lhs, (list, str)) != isinstance(rhs, (list, str)):
                    # Allow numeric + numeric, str + str, list + list only.
                    if not (isinstance(lhs, (int, float)) and isinstance(rhs, (int, float))):
                        raise TypeError(f"cannot add {type(lhs).__name__} and {type(rhs).__name__}")
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs / rhs
            if op == "//":
                return lhs // rhs
            if op == "%":
                return lhs % rhs
            if op == "**":
                return lhs ** rhs
        except VMTrap:
            raise
        except Exception as exc:
            raise VMTrap(f"{func.name}: {op} failed: {exc}") from exc
        raise VMTrap(f"{func.name}: unknown binop {op!r}")

    def _unary(self, func: WasmFunction, op: str, value: Any) -> Any:
        try:
            if op == "-":
                return -value
            if op == "+":
                return +value
            if op == "not":
                return not value
        except Exception as exc:
            raise VMTrap(f"{func.name}: unary {op} failed: {exc}") from exc
        raise VMTrap(f"{func.name}: unknown unary {op!r}")

    def _compare(self, func: WasmFunction, op: str, lhs: Any, rhs: Any) -> bool:
        try:
            if op == "==":
                return lhs == rhs
            if op == "!=":
                return lhs != rhs
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            if op == ">=":
                return lhs >= rhs
            if op == "in":
                return lhs in rhs
            if op == "not in":
                return lhs not in rhs
            if op == "is":
                # Only identity against None is meaningful in the sandbox.
                return lhs is rhs
            if op == "is not":
                return lhs is not rhs
        except Exception as exc:
            raise VMTrap(f"{func.name}: comparison {op} failed: {exc}") from exc
        raise VMTrap(f"{func.name}: unknown comparison {op!r}")

    def _index(self, func: WasmFunction, obj: Any, index: Any) -> Any:
        try:
            return obj[index]
        except (KeyError, IndexError, TypeError) as exc:
            raise VMTrap(f"{func.name}: index failed: {exc}") from exc

    def _store_index(self, func: WasmFunction, obj: Any, index: Any, value: Any) -> None:
        if not isinstance(obj, (list, dict)):
            raise VMTrap(f"{func.name}: cannot assign into {type(obj).__name__}")
        try:
            obj[index] = value
        except (KeyError, IndexError, TypeError) as exc:
            raise VMTrap(f"{func.name}: index assignment failed: {exc}") from exc

    def _check_key(self, func: WasmFunction, table: Any, key: Any) -> None:
        if not isinstance(table, str) or not isinstance(key, str):
            raise VMTrap(
                f"{func.name}: storage table and key must be strings, "
                f"got ({type(table).__name__}, {type(key).__name__})"
            )

    @staticmethod
    def _to_str(func: WasmFunction, value: Any) -> str:
        if value is None or isinstance(value, (str, int, float, bool)):
            return str(value)
        raise VMTrap(f"{func.name}: cannot format {type(value).__name__} in f-string")

    # -- builtins ------------------------------------------------------------

    def _builtin(self, func: WasmFunction, name: str, args: List[Any]) -> Tuple[Any, int]:
        """Execute a whitelisted builtin; returns (result, extra gas)."""
        try:
            if name == "busy":
                # Pure computation: burns gas, returns nothing.
                amount = int(args[0])
                if amount < 0:
                    raise ValueError(f"busy() amount must be >= 0, got {amount}")
                return None, amount
            if name == "len":
                return len(args[0]), 0
            if name == "str":
                return self._to_str(func, args[0]), 0
            if name == "int":
                return int(args[0]), 0
            if name == "float":
                return float(args[0]), 0
            if name == "bool":
                return bool(args[0]), 0
            if name == "abs":
                return abs(args[0]), 0
            if name == "min":
                target = args[0] if len(args) == 1 else args
                return min(target), len(target)
            if name == "max":
                target = args[0] if len(args) == 1 else args
                return max(target), len(target)
            if name == "sum":
                return sum(args[0]), len(args[0])
            if name == "sorted":
                result = sorted(args[0])
                return result, len(result)
            if name == "range":
                result = list(range(*args))
                return result, len(result)
            if name == "round":
                return round(*args), 0
            if name == "list":
                if not args:
                    return [], 0
                src = args[0]
                if isinstance(src, dict):
                    result = list(src.keys())
                elif isinstance(src, (list, tuple, str)):
                    result = list(src)
                else:
                    raise TypeError(f"cannot make a list from {type(src).__name__}")
                return result, len(result)
            if name == "dict":
                if not args:
                    return {}, 0
                return dict(args[0]), len(args[0])
        except VMTrap:
            raise
        except Exception as exc:
            raise VMTrap(f"{func.name}: builtin {name} failed: {exc}") from exc
        raise VMTrap(f"{func.name}: unknown builtin {name!r}")

    # -- methods -------------------------------------------------------------

    _LIST_METHODS = {
        "append", "extend", "pop", "insert", "remove", "index", "count",
        "sort", "reverse", "copy",
    }
    _DICT_METHODS = {"get", "keys", "values", "items", "pop", "setdefault", "copy"}
    _STR_METHODS = {
        "lower", "upper", "split", "join", "strip", "startswith", "endswith",
        "replace", "find", "zfill", "count", "index",
    }

    def _method(
        self, func: WasmFunction, receiver: Any, name: str, args: List[Any]
    ) -> Tuple[Any, int]:
        if isinstance(receiver, list):
            allowed = self._LIST_METHODS
        elif isinstance(receiver, dict):
            allowed = self._DICT_METHODS
        elif isinstance(receiver, str):
            allowed = self._STR_METHODS
        else:
            raise VMTrap(
                f"{func.name}: no methods on {type(receiver).__name__} values"
            )
        if name not in allowed:
            raise VMTrap(
                f"{func.name}: method {name!r} not allowed on {type(receiver).__name__}"
            )
        try:
            result = getattr(receiver, name)(*args)
        except VMTrap:
            raise
        except Exception as exc:
            raise VMTrap(f"{func.name}: method {name} failed: {exc}") from exc
        # dict views must become plain lists so values stay in the sandbox's
        # simple data model.
        if name in ("keys", "values"):
            return list(result), len(receiver)
        if name == "items":
            return [list(pair) for pair in result], len(receiver)
        extra = len(receiver) if name in ("sort", "reverse", "copy", "extend") else 0
        return result, extra
