"""Workload generation: zipf-skewed request mixes and closed-loop clients."""

from .clients import ClosedLoopClient, Invoker, OpenLoopClient, run_clients

__all__ = ["ClosedLoopClient", "Invoker", "OpenLoopClient", "run_clients"]
