"""Closed-loop workload clients (paper §5.2).

The paper drives each configuration with logical client processes issuing
requests back-to-back; latencies are medians/p99s over the full run.  A
:class:`ClosedLoopClient` draws (function, args) pairs from its app's
workload mix with a private deterministic RNG, invokes through whatever
deployment it is bound to, and records per-request samples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..apps import App
from ..consistency import HistoryRecorder
from ..errors import UnavailableError
from ..sim import Metrics, Simulator

__all__ = ["Invoker", "ClosedLoopClient", "run_clients"]

#: A deployment binding: invoke(function_id, args) -> generator -> outcome.
#: Outcomes must expose .result/.latency_ms/.path/.read_versions/
#: .write_versions (InvocationOutcome and BaselineOutcome both do); .path
#: tags the per-(region, path) latency histograms and trace root spans.
Invoker = Callable[[str, List[Any]], Generator]


@dataclass
class ClosedLoopClient:
    """One logical client bound to a region's deployment."""

    sim: Simulator
    app: App
    region: str
    invoke: Invoker
    metrics: Metrics
    rng: random.Random
    requests: int
    client_app_rtt_ms: float = 1.0
    label_prefix: str = "e2e"
    history: Optional[HistoryRecorder] = None
    think_time_ms: float = 0.0

    def run(self) -> Generator:
        """The client process: issue ``requests`` requests sequentially.

        With tracing enabled each request opens a fresh trace whose root
        ``invocation`` span covers exactly the recorded e2e interval; the
        two client-hop halves become ``phase.client_rtt`` spans so that
        every virtual millisecond of e2e is attributed to some phase.
        """
        obs = self.sim.obs
        for _i in range(self.requests):
            function_id, args = self.app.generate_request(self.rng)
            start = self.sim.now
            root = None
            if obs.enabled:
                root = obs.start(
                    "invocation", kind="invocation", new_trace=True,
                    function=function_id, region=self.region,
                )
                obs.activate(root.context)
            record = None if self.history is None else self.history.begin(function_id, start)
            # Client -> co-located deployment hop.
            yield self.sim.timeout(self.client_app_rtt_ms / 2.0)
            if root is not None:
                obs.phase("phase.client_rtt", start_ms=start)
            outcome = yield self.sim.spawn(
                self.invoke(function_id, args), name=f"req({function_id})"
            )
            reply_hop_start = self.sim.now
            yield self.sim.timeout(self.client_app_rtt_ms / 2.0)
            latency = self.sim.now - start
            if root is not None:
                obs.phase("phase.client_rtt", start_ms=reply_hop_start)
                root.finish(self.sim.now, path=outcome.path)
                obs.activate(None)
            self.metrics.record(self.label_prefix, latency)
            self.metrics.record(f"{self.label_prefix}.region.{self.region}", latency)
            self.metrics.record(f"{self.label_prefix}.fn.{function_id}", latency)
            self.metrics.record_tagged(
                self.label_prefix, latency,
                region=self.region, path=outcome.path, function=function_id,
            )
            self.metrics.incr("requests.total")
            if record is not None:
                self.history.finish(
                    record,
                    self.sim.now,
                    reads=outcome.read_versions,
                    writes=outcome.write_versions,
                )
            if self.think_time_ms > 0:
                yield self.sim.timeout(self.rng.expovariate(1.0 / self.think_time_ms))
        return self.metrics


@dataclass
class OpenLoopClient:
    """Poisson arrivals at a fixed offered rate, independent of responses.

    Unlike the closed-loop client, requests are spawned without waiting
    for the previous one — queueing (lock waits, invalidation storms)
    shows up as latency growth instead of throughput collapse.  Used by
    the offered-load sweep to probe §5.3's "the only bottleneck Radical
    introduces is the singleton LVI server" claim.
    """

    sim: Simulator
    app: App
    region: str
    invoke: Invoker
    metrics: Metrics
    rng: random.Random
    rate_rps: float          # offered load, requests per (virtual) second
    duration_ms: float       # how long to keep generating
    label_prefix: str = "e2e"
    #: Count a clean ``UnavailableError`` as a shed request instead of
    #: failing the run — what a capacity benchmark wants under deliberate
    #: overload (the latency sweeps keep the default: failures are bugs).
    tolerate_unavailable: bool = False
    #: Idle this long before the first arrival — what makes the client a
    #: *surge*: the chaos harness spawns it at time 0 with the window's
    #: start as the delay, so the Poisson gap stream is identical no
    #: matter when the window opens.
    start_after_ms: float = 0.0
    #: Per-request completion hook, called as ``on_outcome(function_id,
    #: args, outcome_or_None, started_at, ended_at)`` — ``None`` for a
    #: tolerated ``UnavailableError``.  The chaos harness uses it to land
    #: surge traffic in the same history/ack tallies as the probe clients.
    on_outcome: Optional[Callable[..., None]] = None

    def run(self) -> Generator:
        """The generator process: emits requests until the duration ends,
        then waits for all in-flight requests to complete."""
        if self.start_after_ms > 0:
            yield self.sim.timeout(self.start_after_ms)
        deadline = self.sim.now + self.duration_ms
        in_flight = []
        mean_gap_ms = 1000.0 / self.rate_rps
        while self.sim.now < deadline:
            yield self.sim.timeout(self.rng.expovariate(1.0 / mean_gap_ms))
            if self.sim.now >= deadline:
                break
            function_id, args = self.app.generate_request(self.rng)
            in_flight.append(
                self.sim.spawn(
                    self._one(function_id, args), name=f"openreq({function_id})"
                )
            )
        for proc in in_flight:
            yield proc

    def _one(self, function_id: str, args) -> Generator:
        obs = self.sim.obs
        start = self.sim.now
        root = None
        if obs.enabled:
            root = obs.start(
                "invocation", kind="invocation", new_trace=True,
                function=function_id, region=self.region, open_loop=True,
            )
            obs.activate(root.context)
        try:
            outcome = yield self.sim.spawn(self.invoke(function_id, args))
        except UnavailableError:
            if not self.tolerate_unavailable:
                raise
            if root is not None:
                root.finish(self.sim.now, path="unavailable")
                obs.activate(None)
            self.metrics.incr("requests.unavailable")
            if self.on_outcome is not None:
                self.on_outcome(function_id, args, None, start, self.sim.now)
            return
        if self.on_outcome is not None:
            self.on_outcome(function_id, args, outcome, start, self.sim.now)
        latency = self.sim.now - start
        if root is not None:
            root.finish(self.sim.now, path=outcome.path)
            obs.activate(None)
        self.metrics.record(self.label_prefix, latency)
        self.metrics.record(f"{self.label_prefix}.region.{self.region}", latency)
        self.metrics.record_tagged(
            self.label_prefix, latency,
            region=self.region, path=outcome.path, function=function_id,
        )
        self.metrics.incr("requests.total")


def run_clients(sim: Simulator, clients: List[ClosedLoopClient]) -> None:
    """Spawn every client and run the world until all complete.

    A client that dies (e.g. an application function trapped in the VM)
    re-raises here — experiments must fail loudly, not report partial
    latency distributions.
    """
    procs = [sim.spawn(c.run(), name=f"client-{c.region}-{i}") for i, c in enumerate(clients)]
    done = sim.all_of([p.done_event for p in procs])
    sim.run(until_event=done)
    for proc in procs:
        if not proc.done:
            raise RuntimeError(f"client {proc.name} did not finish (deadlock?)")
        _ = proc.result  # re-raises the client's failure, if any
    # Drain followups and timers so the primary reaches quiescence.
    sim.run(until=sim.now + 10_000.0)
