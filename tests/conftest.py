"""Shared test scaffolding: the counter-stack builder used across suites.

``build_counter_stack`` is deliberately a plain function rather than a
pytest fixture: hypothesis ``@given`` tests cannot take function-scoped
fixtures, and several suites need to call it with explicit seeds inside
the test body.  ``tests/`` has no ``__init__.py``, so pytest puts this
module on ``sys.path`` and suites import it with ``from conftest import
build_counter_stack``.
"""

from repro.core import (
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    RadicalConfig,
)
from repro.sim import (
    Metrics,
    Network,
    RandomStreams,
    Region,
    Simulator,
    paper_latency_table,
)
from repro.storage import KVStore, NearUserCache

COUNTER_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    db_put("counters", f"c:{k}", count + 1)
    return count + 1
'''

READ_SRC = '''
def read(k):
    busy(2000)
    return db_get("counters", f"c:{k}")
'''


def build_counter_stack(seed=1, followup_timeout=400.0,
                        regions=(Region.JP, Region.CA), config=None):
    """Build a single-primary counter deployment: one LVI server in VA plus
    a near-user runtime per region, all sharing one warmed key ``c:x``.

    Returns ``(sim, net, store, server, runtimes, metrics)``.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    net = Network(sim, paper_latency_table(), streams)
    metrics = Metrics()
    if config is None:
        config = RadicalConfig(
            service_jitter_sigma=0.0, followup_timeout_ms=followup_timeout
        )
    registry = FunctionRegistry()
    registry.register(FunctionSpec("t.bump", COUNTER_SRC, 20.0))
    registry.register(FunctionSpec("t.read", READ_SRC, 20.0))
    store = KVStore()
    store.put("counters", "c:x", 0)
    server = LVIServer(sim, net, registry, store, config, streams, metrics)
    runtimes = {}
    for region in regions:
        cache = NearUserCache(region)
        cache.install("counters", "c:x", store.get("counters", "c:x"))
        runtimes[region] = NearUserRuntime(
            sim, net, region, cache, registry, config, streams, metrics
        )
    return sim, net, store, server, runtimes, metrics
