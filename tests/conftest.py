"""Shared test scaffolding: the counter-stack builder used across suites.

``build_counter_stack`` is deliberately a plain function rather than a
pytest fixture: hypothesis ``@given`` tests cannot take function-scoped
fixtures, and several suites need to call it with explicit seeds inside
the test body.  ``tests/`` has no ``__init__.py``, so pytest puts this
module on ``sys.path`` and suites import it with ``from conftest import
build_counter_stack``.

The stack itself is built by :class:`repro.topology.Deployment` — the same
builder the experiment and chaos harnesses use — so the tests exercise the
exact construction path of every experiment.  ``shards`` > 1 builds the
partitioned near-storage tier (shard 0 keeps the seed's ``lvi-server``
name and is what the returned ``store``/``server`` refer to).
"""

from repro.core import FunctionSpec, RadicalConfig
from repro.sim import Region
from repro.topology import Deployment, TopologySpec

COUNTER_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    db_put("counters", f"c:{k}", count + 1)
    return count + 1
'''

READ_SRC = '''
def read(k):
    busy(2000)
    return db_get("counters", f"c:{k}")
'''


def build_counter_deployment(seed=1, followup_timeout=400.0,
                             regions=(Region.JP, Region.CA), config=None,
                             shards=1, shard_map=None, mesh=None,
                             fault_plan=None):
    """The counter stack as a :class:`Deployment` (full topology access)."""
    if config is None:
        config = RadicalConfig(
            service_jitter_sigma=0.0, followup_timeout_ms=followup_timeout
        )
    return Deployment.build(
        TopologySpec(
            regions=regions,
            shards=shards,
            seed=seed,
            config=config,
            network_jitter_sigma=0.0,
            warm_caches=True,
            persistent_caches=False,
            raft_prewarm_ms=0.0,
            shard_map=shard_map,
            mesh=mesh,
            fault_plan=fault_plan,
        ),
        functions=[
            FunctionSpec("t.bump", COUNTER_SRC, 20.0),
            FunctionSpec("t.read", READ_SRC, 20.0),
        ],
        seed_data=lambda store: store.put("counters", "c:x", 0),
    )


def build_counter_stack(seed=1, followup_timeout=400.0,
                        regions=(Region.JP, Region.CA), config=None,
                        shards=1):
    """Build a single-primary counter deployment: one LVI server in VA plus
    a near-user runtime per region, all sharing one warmed key ``c:x``.

    Returns ``(sim, net, store, server, runtimes, metrics)``.
    """
    dep = build_counter_deployment(
        seed=seed, followup_timeout=followup_timeout, regions=regions,
        config=config, shards=shards,
    )
    return dep.sim, dep.net, dep.store, dep.server, dep.runtimes, dep.metrics
