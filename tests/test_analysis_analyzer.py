"""Tests for the analyzer facade, f^rw execution, and soundness properties.

The central soundness property (what linearizability depends on): for any
inputs and any cache contents consistent between f^rw and f's speculative
run, the set f^rw predicts equals the set f actually accesses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonDeterminismError
from repro.analysis import ReadWriteSet, analyze_source, derive_rwset, try_analyze
from repro.wasm import DictEnv, VM


def predict_and_run(source, args, data):
    """Helper: returns (predicted rwset, actual trace) on shared data."""
    analyzed = analyze_source(source)
    store = dict(data)
    rwset, _gas = derive_rwset(analyzed.frw, list(args), lambda t, k: store.get((t, k)))
    trace = VM(DictEnv(dict(data))).execute(analyzed.f, list(args))
    return analyzed, rwset, trace


class TestAnalyzedFunction:
    def test_login_profile(self):
        src = """
def login(username, password):
    user = db_get("users", f"user:{username}")
    if user is None:
        return {"ok": False}
    hashed = pbkdf2_hash(password, user["salt"])
    return {"ok": hashed == user["hash"]}
"""
        analyzed = analyze_source(src)
        assert analyzed.analyzable
        assert not analyzed.writes
        assert analyzed.reads
        assert analyzed.slice_ratio < 0.5  # pbkdf2 and checks sliced away

    def test_writer_flagged(self):
        analyzed = analyze_source('def f(k):\n    db_put("t", k, 1)')
        assert analyzed.writes

    def test_unanalyzable_source_degrades_gracefully(self):
        # Uses a construct the slicer handles but the compiler rejects in
        # f^rw?  Easier: blow the node budget.
        src = "def f(x):\n" + "\n".join(f"    v{i} = x + {i}" for i in range(300))
        src += "\n    return db_get('t', f'k:{v299}')"
        result = try_analyze(src, node_budget=100)
        assert not result.analyzable
        assert result.frw is None
        assert result.error

    def test_nondeterminism_always_rejected(self):
        with pytest.raises(NonDeterminismError):
            try_analyze("def f():\n    return now()")

    def test_frw_gas_much_cheaper_for_login(self):
        src = """
def login(username, password):
    user = db_get("users", f"user:{username}")
    if user is None:
        return {"ok": False}
    hashed = pbkdf2_hash(password, user["salt"])
    return {"ok": hashed == user["hash"]}
"""
        analyzed = analyze_source(src)
        data = {("users", "user:u"): {"salt": "s", "hash": "h"}}
        _rw, frw_gas = derive_rwset(analyzed.frw, ["u", "pw"], lambda t, k: data.get((t, k)))
        f_trace = VM(DictEnv(dict(data))).execute(analyzed.f, ["u", "pw"])
        assert frw_gas * 100 < f_trace.gas_used


class TestPredictionMatchesExecution:
    def test_simple_read(self):
        _a, rwset, trace = predict_and_run(
            'def f(k):\n    return db_get("t", f"i:{k}")', ["x"], {}
        )
        assert set(rwset.reads) == set(trace.read_keys())

    def test_conditional_access_same_path(self):
        src = """
def f(uid, premium):
    if premium == 1:
        return db_get("premium", f"p:{uid}")
    return db_get("basic", f"b:{uid}")
"""
        for premium in (0, 1):
            _a, rwset, trace = predict_and_run(src, ["u", premium], {})
            assert set(rwset.reads) == set(trace.read_keys())

    def test_dependent_read_chain(self):
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    if user is None:
        return None
    return db_get("teams", f"t:{user['team']}")
"""
        data = {("users", "u:alice"): {"team": "blue"}}
        _a, rwset, trace = predict_and_run(src, ["alice"], data)
        assert set(rwset.reads) == set(trace.read_keys()) == {
            ("users", "u:alice"),
            ("teams", "t:blue"),
        }

    def test_dependent_read_missing_prefix(self):
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    if user is None:
        return None
    return db_get("teams", f"t:{user['team']}")
"""
        _a, rwset, trace = predict_and_run(src, ["ghost"], {})
        assert set(rwset.reads) == set(trace.read_keys()) == {("users", "u:ghost")}

    def test_fanout_writes(self):
        src = """
def f(uid, text):
    pid = digest(f"{uid}:{text}")
    db_put("posts", f"post:{pid}", {"t": text})
    fans = db_get("followers", f"fo:{uid}")
    if fans is None:
        fans = []
    for fan in fans:
        db_put("timelines", f"tl:{fan}", pid)
    return pid
"""
        data = {("followers", "fo:u"): ["a", "b", "c"]}
        _a, rwset, trace = predict_and_run(src, ["u", "hi"], data)
        assert set(rwset.writes) == set(trace.write_keys())
        assert len(rwset.writes) == 4

    @given(
        uid=st.integers(min_value=0, max_value=20),
        fanout=st.lists(st.integers(min_value=0, max_value=20), max_size=5),
        premium=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_prediction_covers_execution(self, uid, fanout, premium):
        src = """
def f(uid, premium):
    user = db_get("users", f"u:{uid}")
    if user is None:
        return None
    if premium == 1:
        db_put("billing", f"bill:{uid}", 1)
    out = []
    for friend in user["friends"]:
        item = db_get("feeds", f"feed:{friend}")
        out.append(item)
        db_put("seen", f"seen:{uid}:{friend}", 1)
    return out
"""
        data = {("users", f"u:{uid}"): {"friends": [str(x) for x in fanout]}}
        _a, rwset, trace = predict_and_run(src, [str(uid), 1 if premium else 0], data)
        predicted = ReadWriteSet.from_lists(list(rwset.reads), list(rwset.writes))
        actual = ReadWriteSet.from_lists(trace.read_keys(), trace.write_keys())
        assert predicted.covers(actual)
        assert set(predicted.reads) == set(actual.reads)
        assert set(predicted.writes) == set(actual.writes)


class TestReadWriteSet:
    def test_dedup_preserves_order(self):
        rw = ReadWriteSet.from_lists(
            [("t", "a"), ("t", "b"), ("t", "a")], [("t", "c"), ("t", "c")]
        )
        assert rw.reads == (("t", "a"), ("t", "b"))
        assert rw.writes == (("t", "c"),)

    def test_all_keys_union(self):
        rw = ReadWriteSet.from_lists([("t", "a")], [("t", "a"), ("t", "b")])
        assert rw.all_keys == (("t", "a"), ("t", "b"))

    def test_covers(self):
        big = ReadWriteSet.from_lists([("t", "a"), ("t", "b")], [("t", "c")])
        small = ReadWriteSet.from_lists([("t", "a")], [("t", "c")])
        assert big.covers(small)
        assert not small.covers(big)

    def test_is_empty_and_has_writes(self):
        assert ReadWriteSet.from_lists([], []).is_empty()
        assert ReadWriteSet.from_lists([], [("t", "x")]).has_writes


class TestVersionedReadSet:
    def test_stale_detection(self):
        from repro.analysis import VersionedReadSet

        vrs = VersionedReadSet(versions={("t", "a"): 3, ("t", "b"): 1})
        stale = vrs.stale_against({("t", "a"): 3, ("t", "b"): 2})
        assert stale == [("t", "b")]

    def test_absent_key_matches_version_zero(self):
        from repro.analysis import VersionedReadSet

        vrs = VersionedReadSet(versions={("t", "ghost"): 0})
        assert vrs.stale_against({}) == []

    def test_miss_sentinel_always_stale(self):
        from repro.analysis import VersionedReadSet

        vrs = VersionedReadSet(versions={("t", "a"): -1})
        assert vrs.has_miss
        assert vrs.stale_against({("t", "a"): 0}) == [("t", "a")]
