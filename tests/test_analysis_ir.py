"""The IR layer: CFG recovery, dataflow solving, and the f^rw optimizer.

The load-bearing test is the differential corpus sweep at the bottom:
every optimized slice body must derive the *identical* rw-set as the
unoptimized one on randomized seeded inputs, for strictly-not-more gas —
the executable statement of the optimizer's contract (the dead-statement
strike additionally may only fire on ``kind == "frw"`` bodies).
"""

import random

import pytest

from repro.analysis import (
    analyze_source,
    build_conflict_matrix,
    build_cfg,
    cross_validate,
    derive_rwset,
    extract_access_sites,
    optimize,
    slice_function,
    static_gas,
    summarize_function,
    symbolic_analyze,
)
from repro.analysis.ir import Liveness, solve
from repro.apps import all_apps
from repro.sim import RandomStreams
from repro.storage.kvstore import KVStore
from repro.wasm import VM, compile_source

BRANCHY_SRC = '''
def f(x):
    if x > 0:
        y = 1
    else:
        y = 2
    return y
'''

LOOP_SRC = '''
def f(n):
    total = 0
    for i in range(n):
        total = total + i
    return total
'''


class TestCFG:
    def test_branchy_blocks_and_edges(self):
        cfg = build_cfg(compile_source(BRANCHY_SRC))
        assert len(cfg.blocks) >= 4  # entry, then, else, join
        entry = cfg.blocks[cfg.entry]
        assert len(entry.succs) == 2  # conditional terminator
        reach = cfg.reachable()
        assert cfg.entry in reach
        assert reach <= set(range(len(cfg.blocks)))

    def test_entry_dominates_everything(self):
        cfg = build_cfg(compile_source(BRANCHY_SRC))
        dom = cfg.dominators()
        for b in cfg.reachable():
            assert cfg.entry in dom[b]

    def test_loop_has_back_edge_and_members(self):
        cfg = build_cfg(compile_source(LOOP_SRC))
        assert cfg.back_edges()
        assert cfg.loop_blocks()

    def test_straight_line_has_no_back_edge(self):
        cfg = build_cfg(compile_source(BRANCHY_SRC))
        assert cfg.back_edges() == []

    def test_static_gas_counts_busy_literal(self):
        plain = compile_source("def f():\n    return 1\n")
        busy = compile_source("def f():\n    busy(500)\n    return 1\n")
        assert static_gas(busy) >= static_gas(plain) + 500


class TestDataflow:
    def test_liveness_kills_redefined_var_across_back_edge(self):
        cfg = build_cfg(compile_source(LOOP_SRC))
        in_facts, _out = solve(cfg, Liveness())
        # `n` feeds range() in the loop header, so it is live at entry;
        # `total` is defined before any use at entry.
        assert "n" in in_facts[cfg.entry] or "total" not in in_facts[cfg.entry]

    def test_backward_orientation(self):
        # For a backward analysis (in, out) stay in control-flow
        # orientation: the exit block's OUT is the boundary (empty).
        cfg = build_cfg(compile_source(BRANCHY_SRC))
        _in, out = solve(cfg, Liveness())
        exits = [b.index for b in cfg.blocks if not b.succs]
        assert exits
        for b in exits:
            assert out[b] == frozenset()


class TestOptimizer:
    def _run(self, func, args):
        class Env:
            def db_get(self, t, k):
                return None

            def db_put(self, t, k, v):
                pass

        return VM(Env()).execute(func, list(args))

    def test_constant_folding_preserves_result(self):
        src = "def f(x):\n    y = 2 + 3\n    return y * x\n"
        func = compile_source(src)
        opt, report = optimize(func)
        assert report.constants_folded > 0
        for x in (0, 1, -7):
            assert self._run(opt, [x]).result == self._run(func, [x]).result
        assert self._run(opt, [4]).gas_used <= self._run(func, [4]).gas_used

    def test_dead_branch_removed(self):
        src = "def f():\n    if 1 > 2:\n        return 99\n    return 1\n"
        func = compile_source(src)
        opt, report = optimize(func)
        assert report.branches_removed + report.dead_instrs_removed > 0
        assert self._run(opt, []).result == 1

    def test_strike_fires_only_on_frw_kind(self):
        # A statement whose stored value is dead and whose mutation target
        # is unobservable: struck from an frw body, kept in an f body
        # (where dropping it could drop a trap).
        src = (
            "def f(k):\n"
            "    votes = db_get(\"t\", f\"v:{k}\")\n"
            "    votes[\"up\"] = votes[\"up\"] + 1\n"
            "    return None\n"
        )
        as_f, rep_f = optimize(compile_source(src, kind="f"))
        as_frw, rep_frw = optimize(compile_source(src, kind="frw"))
        assert rep_f.dead_statements_removed == 0
        assert rep_frw.dead_statements_removed > 0
        assert static_gas(as_frw) < static_gas(as_f)

    def test_strike_keeps_statements_feeding_keys(self):
        # The second read's key depends on the first statement's store, so
        # nothing here is strikeable even in an frw body.
        src = (
            "def f(k):\n"
            "    a = db_get(\"t\", f\"v:{k}\")\n"
            "    b = db_get(\"t\", f\"w:{a}\")\n"
            "    return b\n"
        )
        _opt, report = optimize(compile_source(src, kind="frw"))
        assert report.dead_statements_removed == 0

    def test_report_gas_accounting_matches(self):
        func = compile_source(BRANCHY_SRC)
        opt, report = optimize(func)
        assert report.static_gas_before == static_gas(func)
        assert report.static_gas_after == static_gas(opt)
        assert report.static_gas_after <= report.static_gas_before


class TestAccessAndSummary:
    def test_extractor_sees_read_and_write(self):
        src = (
            "def f(k):\n"
            "    v = db_get(\"t\", f\"a:{k}\")\n"
            "    db_put(\"t\", f\"a:{k}\", v)\n"
            "    return v\n"
        )
        sites = extract_access_sites(compile_source(src))
        kinds = sorted(s.kind for s in sites)
        assert kinds == ["read", "write"]
        assert all(s.table == "t" for s in sites)

    def test_single_key_affinity(self):
        src = "def f(k):\n    return db_get(\"t\", f\"a:{k}\")\n"
        summary = summarize_function(compile_source(src))
        assert summary.single_key
        assert summary.static_key is None

    def test_static_key_known_at_registration(self):
        src = "def f():\n    return db_get(\"t\", \"front-page\")\n"
        summary = summarize_function(compile_source(src))
        assert summary.single_key
        assert summary.static_key == ("t", "front-page")

    def test_distinct_patterns_defeat_affinity(self):
        src = (
            "def f(k):\n"
            "    a = db_get(\"t\", f\"a:{k}\")\n"
            "    b = db_get(\"t\", f\"b:{k}\")\n"
            "    return [a, b]\n"
        )
        assert not summarize_function(compile_source(src)).single_key

    def test_conflict_matrix_separates_tables(self):
        writer = summarize_function(compile_source(
            "def w(k):\n    db_put(\"t\", f\"a:{k}\", 1)\n    return None\n"
        ))
        reader = summarize_function(compile_source(
            "def r(k):\n    return db_get(\"t\", f\"a:{k}\")\n"
        ))
        other = summarize_function(compile_source(
            "def o(k):\n    return db_get(\"u\", f\"a:{k}\")\n"
        ))
        matrix = build_conflict_matrix([writer, reader, other])
        assert matrix.conflicts("w", "r")
        assert not matrix.conflicts("w", "o")
        assert not matrix.conflicts("r", "o")  # two readers never conflict


class TestCorpusDifferential:
    """The optimizer's contract, executed over every app function."""

    @pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
    def test_optimized_frw_is_equivalent_and_cheaper(self, app):
        store = KVStore(app.name)
        app.seed(store, RandomStreams(7), app.context)

        def read(table, key):
            item = store.get_or_none(table, key)
            return None if item is None else item.copy_value()

        for fn in app.functions:
            analyzed = analyze_source(fn.spec.source)
            rng = random.Random(f"differential:{fn.function_id}")
            for _ in range(5):
                args = fn.arggen(app.context, rng)
                rw_before, gas_before = derive_rwset(
                    analyzed.frw_unoptimized, list(args), read
                )
                rw_after, gas_after = derive_rwset(analyzed.frw, list(args), read)
                assert rw_after == rw_before, fn.function_id
                assert gas_after <= gas_before, fn.function_id

    @pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
    def test_three_engines_agree(self, app):
        for fn in app.functions:
            analyzed = analyze_source(fn.spec.source)
            verdict = cross_validate(
                analyzed.f,
                analyzed.frw,
                symbolic_analyze(fn.spec.source),
                slice_function(fn.spec.source),
            )
            assert verdict.consistent, verdict.discrepancies


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
