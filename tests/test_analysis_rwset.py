"""Edge cases of the rw-set contract: ``covers()`` asymmetry, empty sets,
and the -1 cache-miss sentinel's round trip through the LVI messages."""

import pytest

from conftest import build_counter_deployment
from repro.analysis import ReadWriteSet, VersionedReadSet, check_coverage
from repro.core import PATH_MISS, PATH_SPECULATIVE
from repro.sim import Region

K = ("counters", "c:x")
K2 = ("counters", "c:y")


def rw(reads=(), writes=()):
    return ReadWriteSet.from_lists(list(reads), list(writes))


class _Trace:
    """Stub with the slice of ExecutionTrace check_coverage consumes."""

    def __init__(self, reads=(), writes=()):
        self._reads, self._writes = list(reads), list(writes)

    def read_keys(self):
        return list(self._reads)

    def write_keys(self):
        return list(self._writes)


class TestCovers:
    def test_read_prediction_does_not_cover_actual_write(self):
        # The asymmetry the lock protocol requires: a predicted READ of a
        # key the execution WRITES is an under-prediction — validation
        # would have taken a shared lock where an exclusive one is needed.
        prediction = rw(reads=[K])
        actual = rw(writes=[K])
        assert not prediction.covers(actual)

    def test_write_prediction_does_not_cover_actual_read(self):
        # Same key, opposite direction: the read set is validated
        # per-version, so an unpredicted read escapes validation even if
        # the key was write-locked.
        prediction = rw(writes=[K])
        actual = rw(reads=[K])
        assert not prediction.covers(actual)

    def test_read_write_prediction_covers_either(self):
        prediction = rw(reads=[K], writes=[K])
        assert prediction.covers(rw(reads=[K]))
        assert prediction.covers(rw(writes=[K]))

    def test_empty_prediction_covers_only_empty(self):
        empty = rw()
        assert empty.covers(rw())
        assert empty.is_empty()
        assert not empty.covers(rw(reads=[K]))
        assert not empty.covers(rw(writes=[K]))

    def test_any_prediction_covers_empty_actual(self):
        assert rw(reads=[K], writes=[K2]).covers(rw())

    def test_superset_covers(self):
        assert rw(reads=[K, K2], writes=[K]).covers(rw(reads=[K2], writes=[K]))


class TestSanitizerReport:
    def test_read_vs_write_overlap_is_unsound(self):
        report = check_coverage("t", rw(reads=[K]), _Trace(writes=[K]))
        assert not report.sound
        assert report.unsound_writes == (K,)
        # The predicted read went unused on the read side too.
        assert report.wasted_reads == (K,)

    def test_sound_with_wasted_locks_counts_union(self):
        # K predicted both read and written = ONE lock (the server
        # upgrades), so a fully unused K counts one wasted lock, not two.
        prediction = rw(reads=[K, K2], writes=[K])
        report = check_coverage("t", prediction, _Trace(reads=[K2]))
        assert report.sound
        assert report.wasted_locks == 1

    def test_exact_prediction_has_no_waste(self):
        report = check_coverage(
            "t", rw(reads=[K], writes=[K2]), _Trace(reads=[K], writes=[K2])
        )
        assert report.sound
        assert report.wasted_locks == 0


class TestMissSentinel:
    def test_minus_one_marks_miss(self):
        vrs = VersionedReadSet(versions={K: 3, K2: -1})
        assert vrs.has_miss
        assert not VersionedReadSet(versions={K: 0}).has_miss

    def test_miss_is_always_stale(self):
        # -1 never equals an authoritative version (absent keys
        # authoritatively read as version 0), so a miss can never pass
        # validation by accident.
        vrs = VersionedReadSet(versions={K: -1})
        assert vrs.stale_against({}) == [K]
        assert vrs.stale_against({K: 0}) == [K]
        assert vrs.stale_against({K: 7}) == [K]

    def test_empty_set_has_no_miss_and_never_stale(self):
        vrs = VersionedReadSet()
        assert not vrs.has_miss
        assert vrs.stale_against({K: 1}) == []

    def test_miss_round_trip_through_lvi(self):
        # A cold key reaches the LVI server with version -1 and must come
        # back via the miss path (backup execution), then serve
        # speculatively once the repair lands in the cache.
        dep = build_counter_deployment()
        runtime = dep.runtimes[Region.JP]
        first = dep.sim.run_process(runtime.invoke("t.read", ["z"]))
        assert first.path == PATH_MISS
        assert first.result is None
        second = dep.sim.run_process(runtime.invoke("t.read", ["z"]))
        assert second.path == PATH_SPECULATIVE


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
