"""Runtime rw-set soundness: the corpus under the sanitizer, and a
deliberately broken slice proving the sanitizer actually fires.

The first half is the machine-checked version of §3.3's soundness
argument: every registered function of all five apps, replayed on seeded
randomized inputs, must produce a speculative trace fully covered by its
f^rw prediction (zero ``analysis.unsound``).  The second half tampers
with a registered function's slice and asserts the runtime refuses to
commit — the check that licenses the optimizer's dead-statement strike.
"""

import random

import pytest

from conftest import build_counter_deployment
from repro.analysis import (
    access_checker,
    analyze_source,
    check_coverage,
    derive_rwset,
)
from repro.apps import all_apps
from repro.sim import RandomStreams, Region
from repro.sim.core import SimulationError
from repro.storage.kvstore import KVStore
from repro.wasm import VM


class _ReplayEnv:
    """Reads hit the seeded store (read-your-writes); writes are buffered."""

    def __init__(self, read):
        self._read = read
        self._writes = {}

    def db_get(self, table, key):
        if (table, key) in self._writes:
            return self._writes[(table, key)]
        return self._read(table, key)

    def db_put(self, table, key, value):
        self._writes[(table, key)] = value


def _reader(store):
    def read(table, key):
        item = store.get_or_none(table, key)
        return None if item is None else item.copy_value()

    return read


APPS = {app.name: app for app in all_apps()}


@pytest.mark.parametrize("app_name", sorted(APPS))
def test_corpus_soundness(app_name):
    """Every function in the app, on randomized seeded inputs: the actual
    access trace never escapes the optimized f^rw's prediction, and the
    streaming interposition hook agrees with the post-hoc verdict."""
    app = APPS[app_name]
    store = KVStore(app.name)
    app.seed(store, RandomStreams(7), app.context)
    read = _reader(store)
    for fn in app.functions:
        analyzed = analyze_source(fn.spec.source)
        rng = random.Random(f"sanitizer:{fn.function_id}")
        for _ in range(5):
            args = fn.arggen(app.context, rng)
            rwset, _gas = derive_rwset(analyzed.frw, list(args), read)
            violations = []
            vm = VM(_ReplayEnv(read), access_hook=access_checker(rwset, violations))
            trace = vm.execute(analyzed.f, list(args))
            report = check_coverage(fn.function_id, rwset, trace)
            assert report.sound, report.describe()
            assert violations == [], (
                f"{fn.function_id}: interposition hook caught {violations} "
                f"but check_coverage judged the execution sound"
            )


# t.bump's real slice predicts {read c:k, write c:k}; this read-only
# imposter compiles to a valid f^rw that forgets the write.
BROKEN_BUMP_FRW_SRC = '''
def bump(k):
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    return count + 1
'''

# Over-approximating slice: predicts an extra read the execution never
# performs (plus the real one), so the prediction still covers the trace.
OVERAPPROX_READ_FRW_SRC = '''
def read(k):
    a = db_get("counters", f"c:{k}")
    b = db_get("counters", "c:never-touched")
    return [a, b]
'''


def _graft_frw(dep, function_id, src):
    """Swap a registered function's slice for an imposter compiled from
    ``src`` (same params, different access prediction)."""
    imposter = analyze_source(src)
    dep.registry.get(function_id).analyzed.frw = imposter.frw


class TestSanitizerFires:
    def test_broken_slice_is_rejected(self):
        # The deliberately-broken fixture: with the write missing from
        # the prediction, the speculative write MUST NOT commit — the
        # runtime raises before any LVI request is sent.
        dep = build_counter_deployment()
        _graft_frw(dep, "t.bump", BROKEN_BUMP_FRW_SRC)
        runtime = dep.runtimes[Region.JP]
        with pytest.raises(SimulationError, match="UNSOUND"):
            dep.sim.run_process(runtime.invoke("t.bump", ["x"]))
        assert dep.metrics.counter("analysis.unsound") == 1
        # The acked-write invariant survives: nothing landed near storage.
        dep.sim.run(until=dep.sim.now + 5_000.0)
        assert dep.store.get("counters", "c:x").value == 0

    def test_broken_slice_raises_even_with_reporting_off(self):
        # sanitize_rwset=False downgrades to the seed's inline check: no
        # obs events or metrics, but under-prediction still fails hard.
        from repro.core import RadicalConfig

        dep = build_counter_deployment(
            config=RadicalConfig(service_jitter_sigma=0.0, sanitize_rwset=False)
        )
        _graft_frw(dep, "t.bump", BROKEN_BUMP_FRW_SRC)
        with pytest.raises(SimulationError, match="under-predicted"):
            dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.bump", ["x"]))
        assert dep.metrics.counter("analysis.unsound") == 0

    def test_overapproximation_is_sound_but_counted(self):
        dep = build_counter_deployment()
        _graft_frw(dep, "t.read", OVERAPPROX_READ_FRW_SRC)
        outcome = dep.sim.run_process(
            dep.runtimes[Region.JP].invoke("t.read", ["x"])
        )
        assert outcome is not None
        assert dep.metrics.counter("analysis.unsound") == 0
        assert dep.metrics.counter("analysis.overapprox") == 1
        assert dep.metrics.counter("analysis.wasted_locks") == 1

    def test_healthy_corpus_emits_no_sanitizer_noise(self):
        dep = build_counter_deployment()
        runtime = dep.runtimes[Region.JP]
        for _ in range(3):
            dep.sim.run_process(runtime.invoke("t.bump", ["x"]))
        assert dep.metrics.counter("analysis.unsound") == 0
        assert dep.metrics.counter("analysis.overapprox") == 0
        # Single-key function: the affinity fast path routed every attempt.
        assert dep.metrics.counter("affinity.fast_path") >= 3


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
