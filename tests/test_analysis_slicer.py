"""Tests for the f^rw slicer: what is kept, what is dropped, soundness."""

import pytest

from repro.errors import AnalysisError, AnalysisTimeout
from repro.analysis import slice_function


class TestSliceBasics:
    def test_pure_function_slices_to_nothing(self):
        result = slice_function("def f(x):\n    return x * 2")
        assert result.kept_statements == 0
        assert not result.reads and not result.writes
        assert "pass" in result.frw_source

    def test_single_read_kept(self):
        result = slice_function('def f(k):\n    return db_get("t", f"item:{k}")')
        assert "__rw_read" in result.frw_source
        assert result.reads and not result.writes

    def test_write_value_dropped(self):
        src = """
def f(k):
    expensive = pbkdf2_hash(k, "salt")
    db_put("t", f"k:{k}", expensive)
"""
        result = slice_function(src)
        assert "pbkdf2" not in result.frw_source
        assert "__rw_write" in result.frw_source
        assert result.writes

    def test_key_dependency_kept(self):
        src = """
def f(x):
    key = f"item:{x + 1}"
    unrelated = x * 99
    return db_get("t", key)
"""
        result = slice_function(src)
        assert "key = " in result.frw_source
        assert "unrelated" not in result.frw_source

    def test_transitive_dependencies_kept(self):
        src = """
def f(x):
    a = x + 1
    b = a * 2
    c = b - 3
    noise = x * 1000
    return db_get("t", f"k:{c}")
"""
        result = slice_function(src)
        for name in ("a = ", "b = ", "c = "):
            assert name in result.frw_source
        assert "noise" not in result.frw_source

    def test_slice_ratio_between_zero_and_one(self):
        result = slice_function('def f(k):\n    x = 1\n    return db_get("t", k)')
        assert 0.0 < result.slice_ratio <= 1.0

    def test_invalid_source_raises(self):
        with pytest.raises(AnalysisError):
            slice_function("not even python (")

    def test_budget_exceeded_raises_timeout(self):
        big = "def f(x):\n" + "\n".join(f"    v{i} = x + {i}" for i in range(200))
        big += "\n    return db_get('t', f'k:{v199}')"
        with pytest.raises(AnalysisTimeout):
            slice_function(big, node_budget=100)


class TestControlDependence:
    def test_branch_guarding_access_kept(self):
        src = """
def f(x, flag):
    if flag > 0:
        return db_get("t", f"a:{x}")
    return None
"""
        result = slice_function(src)
        assert "if flag > 0" in result.frw_source

    def test_early_return_before_access_kept(self):
        # `if user is None: return` decides whether later accesses run.
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    if user is None:
        return None
    return db_get("profiles", f"p:{uid}")
"""
        result = slice_function(src)
        assert "if user is None" in result.frw_source
        assert "return None" in result.frw_source

    def test_early_return_after_last_access_dropped(self):
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    if user is None:
        return {"error": "no such user"}
    return {"ok": True}
"""
        result = slice_function(src)
        # The access happened already; neither branch matters for rw-sets.
        assert "error" not in result.frw_source

    def test_loop_over_read_result_kept(self):
        src = """
def f(uid):
    ids = db_get("follows", f"f:{uid}")
    out = []
    for i in ids:
        item = db_get("posts", f"p:{i}")
        out.append(item)
    return out
"""
        result = slice_function(src)
        assert "for i in ids" in result.frw_source
        assert result.dependent_reads

    def test_while_condition_variables_kept(self):
        src = """
def f(n):
    i = 0
    junk = 0
    while i < n:
        db_put("t", f"k:{i}", 0)
        i += 1
        junk += 99
    return junk
"""
        result = slice_function(src)
        assert "i += 1" in result.frw_source
        assert "junk += 99" not in result.frw_source

    def test_break_inside_loop_with_access_kept(self):
        src = """
def f(items):
    for x in items:
        if x == "stop":
            break
        db_put("t", f"k:{x}", 1)
    return None
"""
        result = slice_function(src)
        assert "break" in result.frw_source


class TestDependentReads:
    def test_flagged_when_read_feeds_key(self):
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    return db_get("teams", f"t:{user['team']}")
"""
        result = slice_function(src)
        assert result.dependent_reads
        assert result.frw_source.count("__rw_read") == 2

    def test_not_flagged_for_independent_reads(self):
        src = """
def f(a, b):
    x = db_get("t", f"k:{a}")
    y = db_get("t", f"k:{b}")
    return [x, y]
"""
        result = slice_function(src)
        assert not result.dependent_reads

    def test_read_feeding_only_control_is_not_flagged(self):
        # The read's result gates *whether* the write happens, but every
        # access key is computable from the inputs alone — the paper's
        # Table 1 does not count existence checks as dependent accesses.
        # The slice still keeps the branch (f^rw must follow the same
        # path), it just is not flagged.
        src = """
def f(uid):
    flag = db_get("flags", f"flag:{uid}")
    if flag == 1:
        db_put("audit", f"a:{uid}", 1)
    return None
"""
        result = slice_function(src)
        assert not result.dependent_reads
        assert "if flag == 1" in result.frw_source


class TestAliasing:
    def test_alias_mutation_kept(self):
        src = """
def f(uid):
    keys = []
    alias = keys
    alias.append(f"k:{uid}")
    for k in keys:
        db_put("t", k, 1)
    return None
"""
        result = slice_function(src)
        assert "append" in result.frw_source

    def test_mutation_of_needed_list_kept(self):
        src = """
def f(n):
    keys = []
    for i in range(n):
        keys.append(f"k:{i}")
    garbage = []
    for i in range(n):
        garbage.append(i * i)
    for k in keys:
        db_put("t", k, 0)
    return None
"""
        result = slice_function(src)
        assert 'keys.append(f"k:{i}")' in result.frw_source.replace("'", '"')
        assert "garbage.append" not in result.frw_source


class TestPutWithNestedRead:
    def test_nested_read_inside_put_value_survives(self):
        src = """
def f(a, b):
    db_put("t", f"dst:{a}", db_get("t", f"src:{b}"))
"""
        result = slice_function(src)
        assert "__rw_read" in result.frw_source
        assert "__rw_write" in result.frw_source
