"""Tests for the symbolic executor (the Eunomia-style analysis engine)."""

import pytest

from repro.analysis import analyze_source, symbolic_analyze
from repro.errors import AnalysisError, AnalysisTimeout


class TestPathEnumeration:
    def test_straight_line_single_path(self):
        rep = symbolic_analyze('def f(k):\n    return db_get("t", f"i:{k}")')
        assert len(rep.paths) == 1
        assert rep.paths[0].terminated

    def test_symbolic_branch_two_paths(self):
        src = """
def f(x):
    if x > 0:
        return db_get("pos", f"p:{x}")
    return db_get("neg", f"n:{x}")
"""
        rep = symbolic_analyze(src)
        assert len(rep.paths) == 2
        assert rep.tables == {"pos", "neg"}

    def test_both_sides_continue_past_branch(self):
        # Statements AFTER an if must execute on both forks.
        src = """
def f(x):
    if x > 0:
        a = 1
    else:
        a = 2
    return db_get("t", f"k:{x}")
"""
        rep = symbolic_analyze(src)
        assert len(rep.paths) == 2
        for path in rep.paths:
            assert len(path.accesses) == 1

    def test_concrete_branch_not_forked(self):
        src = """
def f(x):
    if 1 > 0:
        return db_get("always", f"k:{x}")
    return db_get("never", f"k:{x}")
"""
        rep = symbolic_analyze(src)
        assert len(rep.paths) == 1
        assert rep.tables == {"always"}

    def test_nested_branches_enumerate(self):
        src = """
def f(a, b):
    if a > 0:
        if b > 0:
            db_put("t", "k1", 1)
        else:
            db_put("t", "k2", 1)
    else:
        db_put("t", "k3", 1)
    return None
"""
        rep = symbolic_analyze(src)
        assert len(rep.paths) == 3
        keys = {s.key_pattern for s in rep.writes}
        assert keys == {"k1", "k2", "k3"}

    def test_path_conditions_recorded(self):
        src = """
def f(flag):
    if flag == 1:
        db_put("t", "guarded", 1)
    return None
"""
        rep = symbolic_analyze(src)
        guarded = [s for s in rep.all_accesses() if s.key_pattern == "guarded"]
        assert guarded
        assert "cmp" in guarded[0].path_condition

    def test_path_budget_raises_timeout(self):
        src = "def f(x):\n" + "\n".join(
            f"    if x > {i}:\n        y{i} = 1" for i in range(10)
        ) + "\n    return db_get('t', f'k:{x}')"
        with pytest.raises(AnalysisTimeout):
            symbolic_analyze(src, max_paths=4)

    def test_step_budget_raises_timeout(self):
        src = """
def f(x):
    i = 0
    for i in range(100000):
        x = x + 1
    return db_get("t", f"k:{x}")
"""
        with pytest.raises(AnalysisTimeout):
            symbolic_analyze(src, max_steps=500)


class TestAccessPatterns:
    def test_key_pattern_shows_inputs(self):
        rep = symbolic_analyze('def f(uid):\n    return db_get("users", f"user:{uid}")')
        assert rep.reads[0].key_pattern == "user:{input:uid}"

    def test_concrete_key_fully_resolved(self):
        rep = symbolic_analyze('def f():\n    return db_get("front", "frontpage")')
        assert rep.reads[0].key_pattern == "frontpage"

    def test_symbolic_table_rejected(self):
        with pytest.raises(AnalysisError, match="symbolic table"):
            symbolic_analyze("def f(t):\n    return db_get(t, 'k')")

    def test_loop_accesses_marked_many(self):
        src = """
def f(uid):
    ids = db_get("index", f"ids:{uid}")
    for i in ids:
        db_put("items", f"item:{i}", 1)
    return None
"""
        rep = symbolic_analyze(src)
        write = rep.writes[0]
        assert write.multiplicity == "many"
        assert write.dependent  # element of a read result feeds the key

    def test_concrete_loop_unrolled_exactly(self):
        src = """
def f():
    for i in [1, 2, 3]:
        db_put("t", f"k:{i}", i)
    return None
"""
        rep = symbolic_analyze(src)
        keys = sorted(s.key_pattern for s in rep.all_accesses())
        assert keys == ["k:1", "k:2", "k:3"]
        assert all(s.multiplicity == "one" for s in rep.all_accesses())

    def test_constant_folding_through_arithmetic(self):
        rep = symbolic_analyze('def f():\n    return db_get("t", f"k:{2 + 3 * 4}")')
        assert rep.reads[0].key_pattern == "k:14"

    def test_read_result_marks_dependency(self):
        src = """
def f(uid):
    user = db_get("users", f"u:{uid}")
    return db_get("teams", f"t:{user['team']}")
"""
        rep = symbolic_analyze(src)
        team_read = [s for s in rep.reads if s.table == "teams"][0]
        assert team_read.dependent
        user_read = [s for s in rep.reads if s.table == "users"][0]
        assert not user_read.dependent

    def test_write_value_does_not_mark_dependency(self):
        src = """
def f(uid):
    data = db_get("src", f"s:{uid}")
    db_put("dst", f"d:{uid}", data)
    return None
"""
        rep = symbolic_analyze(src)
        write = rep.writes[0]
        assert not write.dependent  # key depends only on the input


class TestCrossValidationWithSlicer:
    """The two analyses must agree on the paper's Table 1 facts."""

    def test_dependent_classification_agrees_on_all_27(self):
        from repro.apps import all_apps

        for app in all_apps():
            for fn in app.functions:
                sym = symbolic_analyze(fn.spec.source)
                sliced = analyze_source(fn.spec.source)
                assert sym.has_dependent_access == sliced.dependent_reads, fn.function_id

    def test_write_detection_agrees_on_all_27(self):
        from repro.apps import all_apps

        for app in all_apps():
            for fn in app.functions:
                sym = symbolic_analyze(fn.spec.source)
                sliced = analyze_source(fn.spec.source)
                assert bool(sym.writes) == sliced.writes, fn.function_id

    def test_tables_found_symbolically_appear_in_slice(self):
        from repro.apps import all_apps

        for app in all_apps():
            for fn in app.functions:
                sym = symbolic_analyze(fn.spec.source)
                sliced = analyze_source(fn.spec.source)
                for table in sym.tables:
                    assert f"'{table}'" in sliced.frw.source.replace('"', "'"), (
                        fn.function_id, table,
                    )

    def test_symbolic_paths_terminate_for_all_27(self):
        from repro.apps import all_apps

        for app in all_apps():
            for fn in app.functions:
                rep = symbolic_analyze(fn.spec.source)
                assert 1 <= len(rep.paths) <= 16, fn.function_id


class TestReportApi:
    def test_dedup_of_sites(self):
        src = """
def f(a, b):
    if a > 0:
        x = db_get("t", f"k:{b}")
    else:
        x = db_get("t", f"k:{b}")
    return x
"""
        rep = symbolic_analyze(src)
        # Two different lines -> two sites even though patterns match.
        assert len(rep.reads) == 2
        assert len({s.line for s in rep.reads}) == 2

    def test_params_and_name(self):
        rep = symbolic_analyze("def foo(a, b):\n    return a")
        assert rep.function_name == "foo"
        assert rep.params == ["a", "b"]

    def test_steps_counted(self):
        rep = symbolic_analyze("def f():\n    return 1 + 2 + 3")
        assert rep.steps_used > 0
