"""Tests for the benchmark applications: semantics, analysis, workloads."""

import random

import pytest

from repro.analysis import analyze_source
from repro.apps import (
    all_apps,
    forum_app,
    hotel_app,
    imageboard_app,
    main_apps,
    projectmgmt_app,
    social_media_app,
)
from repro.sim import RandomStreams
from repro.storage import KVStore
from repro.core.storage_library import PrimaryEnv
from repro.wasm import VM, compile_source


def seeded(app):
    store = KVStore()
    app.seed(store, RandomStreams(3), app.context)
    return store


def run_fn(app, store, function_id, args):
    fn = compile_source(app.function(function_id).spec.source)
    env = PrimaryEnv(store)
    return VM(env).execute(fn, args)


class TestInventory:
    def test_27_functions_across_5_apps(self):
        # §5.1: "we implemented 27 serverless functions across the five
        # applications".
        assert sum(len(a.functions) for a in all_apps()) == 27

    def test_16_functions_in_main_apps(self):
        assert sum(len(a.functions) for a in main_apps()) == 16

    def test_all_functions_analyzable(self):
        for app in all_apps():
            for fn in app.functions:
                analyzed = analyze_source(fn.spec.source)
                assert analyzed.analyzable, fn.function_id

    def test_exactly_three_dependent_read_functions(self):
        # §5.1: "three of which required the optimization for dependent
        # reads presented in §3.3".
        dependent = [
            fn.function_id
            for app in all_apps()
            for fn in app.functions
            if analyze_source(fn.spec.source).dependent_reads
        ]
        assert sorted(dependent) == [
            "hotel.search",
            "imageboard.tag_search",
            "social.post",
        ]

    def test_table1_service_times(self):
        expected = {
            "social.login": 213.0, "social.post": 106.0, "social.follow": 16.0,
            "social.timeline": 120.0, "social.profile": 124.0,
            "hotel.search": 161.0, "hotel.recommend": 207.0, "hotel.book": 272.0,
            "hotel.review": 13.0, "hotel.login": 213.0, "hotel.attractions": 111.0,
            "forum.homepage": 209.0, "forum.post": 18.0, "forum.interact": 16.0,
            "forum.view": 123.0, "forum.login": 212.0,
        }
        for app in main_apps():
            for fn in app.functions:
                assert fn.spec.service_time_ms == expected[fn.function_id]

    def test_workload_weights_sum_to_100(self):
        for app in main_apps():
            assert app.total_weight() == pytest.approx(100.0)


class TestSocialSemantics:
    def test_login_success_and_failure(self):
        app = social_media_app()
        store = seeded(app)
        ok = run_fn(app, store, "social.login", ["u0", "hunter2"]).result
        bad = run_fn(app, store, "social.login", ["u0", "wrong"]).result
        ghost = run_fn(app, store, "social.login", ["nobody", "x"]).result
        assert ok["ok"] is True
        assert bad["ok"] is False
        assert ghost["ok"] is False

    def test_post_fans_out_to_followers(self):
        app = social_media_app()
        store = seeded(app)
        followers = store.get("graph", "followers:u0").value
        result = run_fn(app, store, "social.post", ["u0", "hello world"]).result
        assert result["ok"]
        pid = result["post_id"]
        for fo in followers:
            tl = store.get("timelines", f"timeline:{fo}").value
            assert tl[0][0] == pid

    def test_follow_updates_both_sides(self):
        app = social_media_app()
        store = seeded(app)
        run_fn(app, store, "social.follow", ["u1", "u2"])
        assert "u2" in store.get("graph", "follows:u1").value
        assert "u1" in store.get("graph", "followers:u2").value

    def test_follow_self_rejected(self):
        app = social_media_app()
        store = seeded(app)
        result = run_fn(app, store, "social.follow", ["u1", "u1"]).result
        assert result["ok"] is False

    def test_follow_idempotent(self):
        app = social_media_app()
        store = seeded(app)
        run_fn(app, store, "social.follow", ["u1", "u2"])
        result = run_fn(app, store, "social.follow", ["u1", "u2"]).result
        assert result["already"] is True
        assert store.get("graph", "follows:u1").value.count("u2") == 1

    def test_timeline_returns_posts_after_post(self):
        app = social_media_app()
        store = seeded(app)
        followers = store.get("graph", "followers:u0").value
        assert followers, "seeded graph should give u0 followers"
        run_fn(app, store, "social.post", ["u0", "fresh post"])
        viewer = followers[0]
        timeline = run_fn(app, store, "social.timeline", [viewer, 10]).result
        assert timeline[0]["author"] == "u0"
        assert timeline[0]["text"] == "fresh post"

    def test_profile_shows_authored_posts(self):
        app = social_media_app()
        store = seeded(app)
        run_fn(app, store, "social.post", ["u3", "mine"])
        profile = run_fn(app, store, "social.profile", ["u1", "u3"]).result
        assert profile["ok"]
        assert len(profile["posts"]) == 1


class TestHotelSemantics:
    def test_search_returns_available_hotels_sorted_by_rate(self):
        app = hotel_app()
        store = seeded(app)
        results = run_fn(app, store, "hotel.search", [0, "d0"]).result
        assert results, "cell 0 should have hotels"
        rates = [r["rate"] for r in results]
        assert rates == sorted(rates)

    def test_booking_reduces_availability(self):
        app = hotel_app()
        store = seeded(app)
        before = run_fn(app, store, "hotel.search", [0, "d0"]).result
        hid = before[0]["id"]
        result = run_fn(app, store, "hotel.book", ["g1", hid, "d0"]).result
        assert result["ok"]
        after = run_fn(app, store, "hotel.search", [0, "d0"]).result
        free_before = next(r["free"] for r in before if r["id"] == hid)
        free_after = next(r["free"] for r in after if r["id"] == hid)
        assert free_after == free_before - 1

    def test_double_booking_rejected(self):
        app = hotel_app()
        store = seeded(app)
        run_fn(app, store, "hotel.book", ["g1", "h0", "d0"])
        result = run_fn(app, store, "hotel.book", ["g1", "h0", "d0"]).result
        assert result["ok"] is False
        assert result["reason"] == "already-booked"

    def test_full_hotel_rejected(self):
        app = hotel_app()
        store = seeded(app)
        for i in range(10):
            assert run_fn(app, store, "hotel.book", [f"g{i}", "h0", "d1"]).result["ok"]
        result = run_fn(app, store, "hotel.book", ["g99", "h0", "d1"]).result
        assert result["ok"] is False
        assert result["reason"] == "full"

    def test_review_prepends(self):
        app = hotel_app()
        store = seeded(app)
        result = run_fn(app, store, "hotel.review", ["g1", "h0", "great"]).result
        assert result["ok"]
        reviews = store.get("reviews", "reviews:h0").value
        assert reviews[0] == ["g1", "great"]

    def test_recommend_deterministic(self):
        app = hotel_app()
        store = seeded(app)
        a = run_fn(app, store, "hotel.recommend", ["city0", 5]).result
        b = run_fn(app, store, "hotel.recommend", ["city0", 5]).result
        assert a == b
        assert len(a) <= 5

    def test_attractions_for_known_hotel(self):
        app = hotel_app()
        store = seeded(app)
        result = run_fn(app, store, "hotel.attractions", ["h0"]).result
        assert result and all(isinstance(a, str) for a in result)


class TestForumSemantics:
    def test_homepage_lists_stories(self):
        app = forum_app()
        store = seeded(app)
        home = run_fn(app, store, "forum.homepage", [20]).result
        assert len(home) == 20
        assert {"sid", "title", "score"} <= set(home[0])

    def test_post_prepends_to_frontpage(self):
        app = forum_app()
        store = seeded(app)
        result = run_fn(app, store, "forum.post", ["f1", "big news", ""]).result
        home = run_fn(app, store, "forum.homepage", [20]).result
        assert home[0]["sid"] == result["sid"]
        assert home[0]["title"] == "big news"

    def test_comment_on_existing_story(self):
        app = forum_app()
        store = seeded(app)
        result = run_fn(app, store, "forum.post", ["f1", "nice!", "s00002"]).result
        assert result["ok"] and result["sid"] == "s00002"
        comments = store.get("stories", "comments:s00002").value
        assert comments[0] == ["f1", "nice!"]
        # A comment does not touch the front page.
        home = run_fn(app, store, "forum.homepage", [20]).result
        assert home[0]["sid"] == "s00000"

    def test_comment_on_missing_story_fails(self):
        app = forum_app()
        store = seeded(app)
        result = run_fn(app, store, "forum.post", ["f1", "x", "s99999"]).result
        assert result["ok"] is False

    def test_upvote_increments(self):
        app = forum_app()
        store = seeded(app)
        before = store.get("stories", "votes:s00000").value["up"]
        result = run_fn(app, store, "forum.interact", ["f1", "s00000", 0]).result
        assert result["up"] == before + 1

    def test_favorite_is_private(self):
        app = forum_app()
        store = seeded(app)
        result = run_fn(app, store, "forum.interact", ["f1", "s00003", 1]).result
        assert result["ok"]
        assert "s00003" in store.get("users", "favs:f1").value

    def test_view_story_with_comments(self):
        app = forum_app()
        store = seeded(app)
        result = run_fn(app, store, "forum.view", ["s00000"]).result
        assert result["ok"]
        assert result["title"] == "Story 0"

    def test_view_missing_story(self):
        app = forum_app()
        store = seeded(app)
        assert run_fn(app, store, "forum.view", ["s99999"]).result["ok"] is False


class TestExtraApps:
    def test_imageboard_upload_and_search(self):
        app = imageboard_app()
        store = seeded(app)
        result = run_fn(app, store, "imageboard.upload", ["i1", "blob", "tag0"]).result
        found = run_fn(app, store, "imageboard.tag_search", ["tag0", 50]).result
        assert any(img["id"] == result["iid"] for img in found)

    def test_pm_task_lifecycle(self):
        app = projectmgmt_app()
        store = seeded(app)
        created = run_fn(app, store, "pm.create_task", ["p1", "b0", "ship it"]).result
        assert created["ok"]
        run_fn(app, store, "pm.assign_task", ["p2", created["tid"]])
        task = store.get("tasks", f"task:{created['tid']}").value
        assert task["assignee"] == "p2"
        assert task["status"] == "doing"

    def test_pm_board_counts(self):
        app = projectmgmt_app()
        store = seeded(app)
        board = run_fn(app, store, "pm.board", ["b0"]).result
        assert board["ok"]
        assert board["todo"] == 5 and board["doing"] == 5


class TestWorkloadGeneration:
    def test_request_mix_tracks_weights(self):
        app = social_media_app()
        rng = random.Random(1)
        counts = {}
        for _i in range(5000):
            fid, _args = app.generate_request(rng)
            counts[fid] = counts.get(fid, 0) + 1
        # Timeline is 80% of the mix.
        assert 0.75 < counts["social.timeline"] / 5000 < 0.85
        assert counts.get("social.post", 0) < 100

    def test_generated_args_are_valid(self):
        for app in all_apps():
            store = seeded(app)
            rng = random.Random(7)
            for _i in range(50):
                fid, args = app.generate_request(rng)
                trace = run_fn(app, store, fid, args)
                assert trace.result is not None or fid.endswith("view")

    def test_zipf_skew_in_story_selection(self):
        app = forum_app()
        rng = random.Random(2)
        hits = 0
        draws = 0
        for _i in range(3000):
            fid, args = app.generate_request(rng)
            if fid == "forum.view":
                draws += 1
                if args[0] in ("s00000", "s00001", "s00002"):
                    hits += 1
        assert draws > 0
        assert hits / draws > 0.1  # top-3 stories draw a large share
