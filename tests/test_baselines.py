"""Tests for the three comparison deployments."""

import pytest

from repro.baselines import GeoReplicatedApp, LocalIdeal, PrimaryBaseline, SimpleWorkload
from repro.core import FunctionRegistry, FunctionSpec, RadicalConfig
from repro.sim import Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, ReplicatedStore

SRC = '''
def echo(k):
    item = db_get("data", f"k:{k}")
    busy(10000)
    return item
'''

WRITE_SRC = '''
def set_item(k, v):
    db_put("data", f"k:{k}", v)
    busy(1000)
    return v
'''


@pytest.fixture
def world():
    sim = Simulator()
    streams = RandomStreams(9)
    net = Network(sim, paper_latency_table(), streams)
    registry = FunctionRegistry()
    registry.register(FunctionSpec("echo", SRC, 100.0))
    registry.register(FunctionSpec("set", WRITE_SRC, 20.0))
    return sim, streams, net, registry


class TestPrimaryBaseline:
    def test_far_client_pays_wan_rtt(self, world):
        sim, streams, net, registry = world
        store = KVStore()
        store.put("data", "k:0", "v")
        baseline = PrimaryBaseline(
            sim, net, registry, store, RadicalConfig(service_jitter_sigma=0.0), streams
        )
        net.register("client-jp", Region.JP)
        outcome = sim.run_process(baseline.invoke_from("client-jp", "echo", [0]))
        # rtt(jp,va)=146 + invoke 13 + exec 100.
        assert outcome.result == "v"
        assert 255 <= outcome.latency_ms <= 265

    def test_local_client_is_fast(self, world):
        sim, streams, net, registry = world
        store = KVStore()
        store.put("data", "k:0", "v")
        baseline = PrimaryBaseline(
            sim, net, registry, store, RadicalConfig(service_jitter_sigma=0.0), streams
        )
        outcome = sim.run_process(baseline.invoke_local("echo", [0]))
        # client hop 1 + invoke 13 + exec 100.
        assert 112 <= outcome.latency_ms <= 117

    def test_writes_hit_primary_with_versions(self, world):
        sim, streams, net, registry = world
        store = KVStore()
        baseline = PrimaryBaseline(sim, net, registry, store, RadicalConfig(), streams)
        outcome = sim.run_process(baseline.invoke_local("set", [1, "hello"]))
        assert store.get("data", "k:1").value == "hello"
        assert outcome.write_versions == {("data", "k:1"): 1}


class TestLocalIdeal:
    def test_no_wan_anywhere(self, world):
        sim, streams, _net, registry = world
        store = KVStore()
        store.put("data", "k:0", "v")
        ideal = LocalIdeal(
            sim, Region.JP, registry, RadicalConfig(service_jitter_sigma=0.0),
            streams, store=store,
        )
        outcome = sim.run_process(ideal.invoke("echo", [0]))
        assert outcome.result == "v"
        assert 110 <= outcome.latency_ms <= 116  # invoke + exec only

    def test_regions_diverge(self, world):
        # The red line is *inconsistent*: writes in one region are
        # invisible in another.  (That is why it is only a bound.)
        sim, streams, _net, registry = world
        ideal_a = LocalIdeal(sim, Region.JP, registry, RadicalConfig(), streams)
        ideal_b = LocalIdeal(sim, Region.CA, registry, RadicalConfig(), streams)
        sim.run_process(ideal_a.invoke("set", [0, "from-jp"]))
        outcome = sim.run_process(ideal_b.invoke("echo", [0]))
        assert outcome.result is None  # CA never saw JP's write


class TestGeoReplicated:
    def test_strongly_consistent_but_slow(self, world):
        sim, streams, net, registry = world
        quorum = ReplicatedStore(sim, net, [Region.VA, Region.OH, Region.OR])
        app = GeoReplicatedApp(
            sim, net, Region.JP, quorum, RadicalConfig(service_jitter_sigma=0.0), streams
        )
        outcome = sim.run_process(app.invoke(SimpleWorkload(compute_ms=100.0, reads=1)))
        # compute 100 + invoke 12 + quorum read from JP: way above local.
        assert outcome.latency_ms > 250

    def test_write_then_remote_read_consistent(self, world):
        sim, streams, net, registry = world
        quorum = ReplicatedStore(sim, net, [Region.VA, Region.OH, Region.OR])
        writer = GeoReplicatedApp(sim, net, Region.CA, quorum, RadicalConfig(), streams)
        reader = GeoReplicatedApp(sim, net, Region.DE, quorum, RadicalConfig(), streams)

        def flow():
            yield sim.spawn(writer.invoke(SimpleWorkload(compute_ms=1.0, reads=0, writes=1)))
            outcome = yield sim.spawn(reader.invoke(SimpleWorkload(compute_ms=1.0, reads=1)))
            return outcome.result

        assert sim.run_process(flow()) == {"from": Region.CA}
