"""Tests for the experiment harness and per-figure experiment drivers."""

import pytest

from repro.apps import social_media_app
from repro.bench import (
    ExperimentConfig,
    cost_table,
    fig4_rows,
    fig5_rows,
    fig6_rows,
    infrastructure_overhead,
    monthly_costs,
    run_baseline_experiment,
    run_eval_trio,
    run_local_ideal_experiment,
    run_radical_experiment,
    table1_functions,
    table2_rtt,
)
from repro.core import RadicalConfig
from repro.sim import Region


SMALL = ExperimentConfig(requests=300, seed=11, clients_per_region=1)


class TestHarness:
    def test_radical_experiment_completes_all_requests(self):
        result = run_radical_experiment(social_media_app(), SMALL)
        assert result.metrics.counter("requests.total") == 300
        assert result.summary().count == 300

    def test_all_regions_and_functions_sampled(self):
        result = run_radical_experiment(social_media_app(), SMALL)
        for region in Region.NEAR_USER:
            assert result.region_summary(region).count > 0
        assert result.function_summary("social.timeline").count > 100

    def test_baseline_fastest_in_va(self):
        result = run_baseline_experiment(social_media_app(), SMALL)
        medians = {r: result.region_summary(r).median for r in Region.NEAR_USER}
        assert medians["va"] == min(medians.values())
        assert medians["jp"] == max(medians.values())

    def test_local_ideal_flat_across_regions(self):
        result = run_local_ideal_experiment(social_media_app(), SMALL)
        medians = [result.region_summary(r).median for r in Region.NEAR_USER]
        assert max(medians) - min(medians) < 30

    def test_radical_beats_baseline(self):
        trio = run_eval_trio("social", SMALL)
        assert trio.improvement() > 0.15
        assert 0 < trio.fraction_of_max() < 1.2

    def test_validation_success_rate_high_when_warm(self):
        result = run_radical_experiment(social_media_app(), SMALL)
        assert result.validation_success_rate() > 0.9

    def test_cold_cache_run_completes(self):
        cfg = ExperimentConfig(requests=150, seed=11, warm_caches=False, clients_per_region=1)
        result = run_radical_experiment(social_media_app(), cfg)
        assert result.metrics.counter("path.miss") > 0

    def test_deterministic_given_seed(self):
        a = run_radical_experiment(social_media_app(), SMALL)
        b = run_radical_experiment(social_media_app(), SMALL)
        assert a.summary().median == b.summary().median
        assert a.metrics.counters() == b.metrics.counters()

    def test_different_seeds_differ(self):
        other = ExperimentConfig(requests=300, seed=12, clients_per_region=1)
        a = run_radical_experiment(social_media_app(), SMALL)
        b = run_radical_experiment(social_media_app(), other)
        assert a.summary().median != b.summary().median

    def test_history_recording(self):
        cfg = ExperimentConfig(
            requests=100, seed=11, clients_per_region=1, record_history=True
        )
        result = run_radical_experiment(social_media_app(), cfg)
        assert result.history is not None
        assert len(result.history) == 100

    def test_recorded_history_strictly_serializable(self):
        from repro.consistency import check_strict_serializability

        cfg = ExperimentConfig(
            requests=200, seed=13, clients_per_region=1, record_history=True
        )
        result = run_radical_experiment(social_media_app(), cfg)
        check_strict_serializability(result.history.records())


@pytest.mark.slow
class TestExperimentViews:
    def test_fig4_row_fields(self):
        trio = run_eval_trio("social", SMALL)
        row = fig4_rows(trio)
        assert row["app"] == "social"
        assert row["radical_median_ms"] < row["baseline_median_ms"]
        assert 0 < row["validation_success_rate"] <= 1

    def test_fig5_rows_cover_regions(self):
        trio = run_eval_trio("social", SMALL)
        rows = fig5_rows(trio)
        assert [r["region"] for r in rows] == list(Region.NEAR_USER)

    def test_fig6_rows_have_service_times(self):
        trio = run_eval_trio("social", SMALL)
        rows = fig6_rows(trio)
        assert any(r["function"] == "social.timeline" for r in rows)
        for r in rows:
            assert r["service_time_ms"] > 0

    def test_table1_matches_paper_flags(self):
        rows = table1_functions()
        by_fn = {r["function"]: r for r in rows}
        assert by_fn["social.post"]["analyzable"] == "Yes*"
        assert by_fn["hotel.search"]["analyzable"] == "Yes*"
        assert by_fn["social.timeline"]["analyzable"] == "Yes"
        assert by_fn["hotel.book"]["writes"] is True
        assert by_fn["forum.homepage"]["writes"] is False

    def test_table2_is_papers(self):
        rows = {r["region"]: r["rtt_to_primary_ms"] for r in table2_rtt()}
        assert rows == {"VA": 7.0, "CA": 74.0, "IE": 70.0, "DE": 93.0, "JP": 146.0}


class TestCostModel:
    def test_paper_exact_values(self):
        baseline, radical = monthly_costs(1_000_000)
        assert baseline.total == pytest.approx(1080.23, abs=0.01)
        assert radical.total == pytest.approx(1416.37, abs=0.02)

    def test_infrastructure_overhead_31pct(self):
        assert infrastructure_overhead() == pytest.approx(0.312, abs=0.002)

    def test_table_shrinking_relative_overhead(self):
        rows = cost_table()
        overheads = [r["overhead"] for r in rows]
        assert overheads == sorted(overheads, reverse=True)

    def test_failure_rate_scales_reexecution_cost(self):
        _b1, r1 = monthly_costs(1_000_000, validation_failure_rate=0.05)
        _b2, r2 = monthly_costs(1_000_000, validation_failure_rate=0.10)
        assert r2.failure_reexecutions == pytest.approx(2 * r1.failure_reexecutions)


class TestReplicatedMode:
    def test_replicated_experiment_runs(self):
        cfg = ExperimentConfig(
            requests=60, seed=11, clients_per_region=1,
            regions=(Region.CA,),
            radical=RadicalConfig(replicated=True),
        )
        result = run_radical_experiment(social_media_app(), cfg)
        assert result.metrics.counter("requests.total") == 60

    def test_replicated_adds_latency(self):
        base_cfg = ExperimentConfig(
            requests=100, seed=11, clients_per_region=1, regions=(Region.CA,)
        )
        repl_cfg = ExperimentConfig(
            requests=100, seed=11, clients_per_region=1, regions=(Region.CA,),
            radical=RadicalConfig(replicated=True),
        )
        single = run_radical_experiment(social_media_app(), base_cfg)
        replicated = run_radical_experiment(social_media_app(), repl_cfg)
        assert replicated.summary().mean >= single.summary().mean
