"""Tests for table rendering and result persistence."""

import json
import os

import pytest

from repro.bench.report import format_table, results_dir, save_results


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["alpha", 1.2345], ["b", 42]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert "alpha" in lines[2]
        # All rows padded to the same width.
        assert len(set(len(line.rstrip()) for line in lines[:1])) == 1

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159], [123.456]])
        assert "3.14" in text
        assert "123.5" in text

    def test_bool_formatting(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_wide_cells_stretch_column(self):
        text = format_table(["h"], [["a-very-long-cell-value"]])
        header_line = text.splitlines()[0]
        assert len(header_line) >= len("a-very-long-cell-value")


class TestSaveResults:
    def test_roundtrip(self):
        path = save_results("_test_artifact", {"rows": [{"x": 1}], "note": "hi"})
        assert os.path.exists(path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["rows"][0]["x"] == 1
        os.remove(path)

    def test_results_dir_is_repo_local(self):
        d = results_dir()
        assert d.endswith("results")
        assert os.path.isdir(d)

    def test_non_json_values_stringified(self):
        class Odd:
            def __repr__(self):
                return "odd!"

        path = save_results("_test_artifact2", {"v": Odd()})
        with open(path) as fh:
            data = json.load(fh)
        assert "odd" in data["v"]
        os.remove(path)


class TestLockWaitMetrics:
    def test_wait_time_accumulates_under_contention(self):
        from repro.sim import Simulator
        from repro.storage import LockManager

        sim = Simulator()
        locks = LockManager(sim)
        K = ("t", "hot")

        def holder():
            yield sim.spawn(locks.acquire_all("w1", [], [K]))
            yield sim.timeout(50.0)
            locks.release_all("w1")

        def waiter():
            yield sim.timeout(1.0)
            yield sim.spawn(locks.acquire_all("w2", [], [K]))
            locks.release_all("w2")

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert locks.total_wait_ms == pytest.approx(49.0)
        assert locks.max_wait_ms == pytest.approx(49.0)

    def test_no_wait_when_uncontended(self):
        from repro.sim import Simulator
        from repro.storage import LockManager

        sim = Simulator()
        locks = LockManager(sim)

        def flow():
            yield sim.spawn(locks.acquire_all("o", [("t", "a")], [("t", "b")]))
            locks.release_all("o")

        sim.run_process(flow())
        assert locks.total_wait_ms == 0.0
