"""The chaos harness end-to-end: determinism, built-in plans, and the
acceptance properties (strict serializability, exactly-once, bounded
termination) under representative fault plans."""

import pytest

from repro.errors import FaultConfigError
from repro.faults import builtin_plans, resolve_plans, run_chaos_case, run_chaos_matrix


class TestPlanRegistry:
    def test_builtin_plans_validate(self):
        plans = builtin_plans()
        assert {"baseline", "lvi-blackout", "server-crash",
                "raft-follower-crash"} <= set(plans)
        for plan in plans.values():
            plan.validate()

    def test_resolve_all_and_lists(self):
        assert {p.name for p in resolve_plans("all")} == set(builtin_plans())
        two = resolve_plans("baseline,slow-wan")
        assert [p.name for p in two] == ["baseline", "slow-wan"]

    def test_resolve_unknown_plan_raises(self):
        with pytest.raises(FaultConfigError, match="no-such-plan"):
            resolve_plans("baseline,no-such-plan")


class TestDeterminism:
    def test_same_seed_same_plan_identical_results(self):
        plan = builtin_plans()["flaky-links"]
        a = run_chaos_case(plan, seed=5, requests_per_client=15)
        b = run_chaos_case(plan, seed=5, requests_per_client=15)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_diverge(self):
        plan = builtin_plans()["flaky-links"]
        a = run_chaos_case(plan, seed=1, requests_per_client=15)
        b = run_chaos_case(plan, seed=2, requests_per_client=15)
        assert a.to_dict() != b.to_dict()


class TestAcceptance:
    @pytest.mark.parametrize("name", sorted(builtin_plans()))
    def test_every_builtin_plan_holds_invariants(self, name):
        plan = builtin_plans()[name]
        result = run_chaos_case(plan, seed=3, requests_per_client=12)
        assert result.completed, f"{name}: clients hung"
        assert result.deadline_ok, f"{name}: invocation blew its deadline"
        assert result.serializable, f"{name}: {result.violation}"
        assert result.lost_writes == 0, f"{name}: acked write lost"
        assert result.duplicate_writes == 0, f"{name}: write applied twice"
        assert result.ok

    def test_blackout_terminates_everything_with_zero_availability(self):
        result = run_chaos_case(builtin_plans()["lvi-blackout"], seed=0,
                                requests_per_client=10)
        assert result.acked == 0 and result.availability == 0.0
        assert result.unavailable == result.requests
        assert result.completed and result.deadline_ok
        assert result.counters["breaker.open"] >= 1
        assert result.counters["breaker.fast_fail"] >= 1

    def test_baseline_is_fully_available(self):
        result = run_chaos_case(builtin_plans()["baseline"], seed=0,
                                requests_per_client=10)
        assert result.availability == 1.0
        assert result.counters.get("rpc.retry", 0) == 0
        assert result.counters.get("fault.injected", 0) == 0

    def test_server_crash_settles_every_intent(self):
        result = run_chaos_case(builtin_plans()["server-crash"], seed=4,
                                requests_per_client=15)
        assert result.ok
        assert result.pending_intents == 0
        assert result.counters["server.crashes"] == 1
        assert result.counters["server.restarts"] == 1

    def test_matrix_runs_plans_by_seed(self):
        plans = resolve_plans("baseline,followup-burst")
        results = run_chaos_matrix(plans, seeds=2, requests_per_client=8)
        assert len(results) == 4
        assert all(r.ok for r in results)
