"""Tests for the radical-repro command-line interface."""

import json
import os

import pytest

from repro.cli import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "146.0" in out  # JP RTT

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "1416.4" in out
        assert "31" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "social.post" in out
        assert "Yes*" in out

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--requests", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        for region in ("VA", "CA", "IE", "DE", "JP"):
            assert region in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_results_artifact_written(self, capsys):
        main(["table2"])
        from repro.bench.report import results_dir

        path = os.path.join(results_dir(), "table2_rtt.json")
        assert os.path.exists(path)
        with open(path) as fh:
            payload = json.load(fh)
        assert any(r["region"] == "JP" for r in payload["rows"])
