"""In-network conflict detection: predicates, dirty set, router, sanitizer.

Covers the precision-upgraded static analysis (argument-sensitive key
constraints, the read-only/commutative classifier) and its consumer — the
shard router's dirty-set fast path — end to end:

* KeyFact overlap semantics and predicate instantiation;
* classifier verdicts on synthetic sources (interval keys via the
  ``int(x) % c`` idiom, commutative increments, static keys);
* ``ShardRouter.static_shard`` edge cases;
* DirtySet lifecycle: enroll/settle/leak balance, including across a
  server crash/restart chaos case;
* zero-cost metrics convention on the detector;
* the runtime sanitizer hard-failing a *planted unsound summary* — a
  lock-skipped request whose static constraints are narrower than what
  the function actually touches must raise, never answer.
"""

import pytest

from repro.analysis import KeyFact
from repro.core import FunctionRegistry, FunctionSpec, LVIServer, RadicalConfig
from repro.core.messages import LVIRequest
from repro.errors import ProtocolError
from repro.sim import (
    Metrics,
    Network,
    RandomStreams,
    Region,
    Simulator,
    paper_latency_table,
)
from repro.sim.core import SimulationError
from repro.storage import KVStore
from repro.topology import ConflictDetector, DirtySet, HashShardMap, ShardRouter


INTERVAL_SRC = '''
def route(uid):
    b = int(uid) % 8
    return db_get("buckets", f"b:{b}")
'''

BUMP_SRC = '''
def bump(k):
    n = db_get("counters", k)
    if n is None:
        n = 0
    db_put("counters", k, n + 1)
    return n + 1
'''

BANNER_SRC = '''
def banner():
    return db_get("site", "banner")
'''

# Reads two keys, but the planted summary below only admits to one.
PAIR_SRC = '''
def pair(k):
    a = db_get("t", f"a:{k}")
    b = db_get("t", f"b:{k}")
    return (a or 0) + (b or 0)
'''


def _summary(source, name="t.fn"):
    record = FunctionRegistry().register(FunctionSpec(name, source, 10.0))
    assert record.analyzed.analyzable
    return record.analyzed.summary


# -- KeyFact overlap semantics ------------------------------------------------

class TestKeyFactOverlap:
    def test_exact_vs_exact(self):
        a = KeyFact("t", "exact", "k:1")
        assert a.overlaps(KeyFact("t", "exact", "k:1"))
        assert not a.overlaps(KeyFact("t", "exact", "k:2"))
        assert not a.overlaps(KeyFact("u", "exact", "k:1"))

    def test_prefix_vs_exact(self):
        p = KeyFact("t", "prefix", "user:")
        assert p.overlaps(KeyFact("t", "exact", "user:9"))
        assert not p.overlaps(KeyFact("t", "exact", "item:9"))

    def test_interval_vs_exact(self):
        span = KeyFact("t", "interval", "b:", lo=0, hi=7)
        assert span.overlaps(KeyFact("t", "exact", "b:5"))
        assert not span.overlaps(KeyFact("t", "exact", "b:8"))
        assert not span.overlaps(KeyFact("t", "exact", "c:5"))

    def test_interval_vs_interval(self):
        a = KeyFact("t", "interval", "b:", lo=0, hi=3)
        assert a.overlaps(KeyFact("t", "interval", "b:", lo=3, hi=9))
        assert not a.overlaps(KeyFact("t", "interval", "b:", lo=4, hi=9))

    def test_any_overlaps_everything(self):
        top = KeyFact(None, "any")
        assert top.overlaps(KeyFact("t", "exact", "k:1"))
        assert KeyFact("t", "exact", "k:1").overlaps(top)

    def test_unknown_table_is_conservative(self):
        assert KeyFact(None, "exact", "k:1").overlaps(KeyFact("t", "exact", "k:1"))


# -- classifier + predicate instantiation ------------------------------------

class TestClassifier:
    def test_modulo_key_becomes_interval_constraint(self):
        summary = _summary(INTERVAL_SRC)
        assert summary.read_only
        assert summary.lock_skippable
        assert summary.predicate.kind_counts()["interval"] == 1
        facts = summary.predicate.instantiate(["17"])
        (fact,) = facts.reads
        assert (fact.table, fact.kind, fact.key, fact.lo, fact.hi) == (
            "buckets", "interval", "b:", 0, 7)
        assert fact.covers("buckets", "b:1")
        assert not fact.covers("buckets", "b:9")

    def test_argument_bound_constraint_instantiates_exact(self):
        summary = _summary(BUMP_SRC)
        facts = summary.predicate.instantiate(["c:7"])
        assert all(f.kind == "exact" and f.key == "c:7"
                   for f in facts.reads + facts.writes)
        assert facts.precise
        assert facts.covers_writes([("counters", "c:7")])
        assert not facts.covers_writes([("counters", "c:8")])

    def test_increment_write_is_commutative_not_skippable(self):
        summary = _summary(BUMP_SRC)
        assert summary.commutative_writes
        assert not summary.read_only
        assert not summary.lock_skippable

    def test_constant_key_reports_static_key(self):
        summary = _summary(BANNER_SRC)
        assert summary.static_key == ("site", "banner")
        assert summary.lock_skippable
        assert summary.predicate.kind_counts()["const"] == 1

    def test_instantiated_requests_conflict_only_on_same_key(self):
        predicate = _summary(BUMP_SRC).predicate
        a, b, c = (predicate.instantiate([k]) for k in ("c:1", "c:1", "c:2"))
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)


# -- ShardRouter.static_shard edge cases --------------------------------------

class TestStaticShard:
    def _router(self, shards=4):
        return ShardRouter(
            HashShardMap(shards), [f"s{i}" for i in range(shards)]
        )

    def test_static_key_function_routes_at_registration(self):
        router = self._router()
        summary = _summary(BANNER_SRC)
        shard = router.static_shard(summary)
        assert shard == router.shard_of("site", "banner")

    def test_input_dependent_function_is_none(self):
        router = self._router()
        assert router.static_shard(_summary(BUMP_SRC)) is None
        assert router.static_shard(_summary(INTERVAL_SRC)) is None

    def test_missing_summary_is_none(self):
        router = self._router()
        assert router.static_shard(None) is None
        assert router.static_shard(object()) is None


# -- DirtySet lifecycle -------------------------------------------------------

class TestDirtySet:
    def test_enroll_probe_settle(self):
        ds = DirtySet()
        ds.enroll(0, "e1", (KeyFact("t", "exact", "k:1"),))
        assert ds.probe(0, (KeyFact("t", "exact", "k:1"),))
        assert not ds.probe(0, (KeyFact("t", "exact", "k:2"),))
        assert not ds.probe(1, (KeyFact("t", "exact", "k:1"),))  # other shard
        assert ds.settle("e1") == 1
        assert not ds.probe(0, (KeyFact("t", "exact", "k:1"),))
        assert ds.balanced

    def test_multi_shard_writer_settles_every_entry(self):
        ds = DirtySet()
        for shard in (0, 1):
            ds.enroll(shard, "e1", (KeyFact("t", "any"),))
        assert ds.enrolled_total == 2
        assert ds.settle("e1") == 2
        assert ds.balanced

    def test_leaked_entry_blocks_probes_forever(self):
        ds = DirtySet()
        ds.enroll(0, "e1", (KeyFact("t", "exact", "k:1"),))
        ds.leak("e1")
        # Still probe-visible, and a late settle must NOT remove it: the
        # writes' fate is unknown, so the conservative answer is forever.
        assert ds.probe(0, (KeyFact("t", "exact", "k:1"),))
        assert ds.settle("e1") == 0
        assert ds.probe(0, (KeyFact("t", "exact", "k:1"),))
        assert ds.balanced          # depth == leaked: quiescent, accounted
        assert ds.stats() == {
            "enrolled": 1, "settled": 0, "leaked": 1, "depth": 1}

    def test_unsettled_entry_is_unbalanced(self):
        ds = DirtySet()
        ds.enroll(0, "e1", (KeyFact("t", "exact", "k:1"),))
        assert not ds.balanced

    def test_settle_unknown_execution_is_zero(self):
        assert DirtySet().settle("nope") == 0


# -- zero-cost metrics convention ---------------------------------------------

class TestDetectorMetrics:
    def _exercise(self, detector):
        detector.enroll([0], "e1", (KeyFact("t", "exact", "k:1"),))
        assert detector.probe(0, (KeyFact("t", "exact", "k:1"),))
        detector.settle("e1")
        detector.enroll([0], "e2", (KeyFact("t", "exact", "k:2"),))
        detector.leak("e2")

    def test_disabled_metrics_record_nothing(self):
        metrics = Metrics(enabled=False)
        detector = ConflictDetector(metrics=metrics)
        self._exercise(detector)
        assert metrics.counter("router.enrolled") == 0
        assert metrics.counter("router.conflict_hit") == 0
        assert metrics.counter("router.settled") == 0
        assert metrics.counter("router.dirty_leaked") == 0
        assert not metrics._samples and not metrics._tagged
        # ...but the detector's answers are identical to the enabled case.
        assert detector.dirty.balanced

    def test_none_metrics_is_fine(self):
        detector = ConflictDetector(metrics=None)
        self._exercise(detector)
        assert detector.dirty.stats()["leaked"] == 1

    def test_enabled_metrics_count(self):
        metrics = Metrics()
        detector = ConflictDetector(metrics=metrics)
        self._exercise(detector)
        assert metrics.counter("router.enrolled") == 2
        assert metrics.counter("router.conflict_hit") == 1
        assert metrics.counter("router.settled") == 1
        assert metrics.counter("router.dirty_leaked") == 1


# -- the server-side fast path and the sanitizer backstop ---------------------

class _ServerWorld:
    def __init__(self, replica=False):
        self.sim = Simulator()
        streams = RandomStreams(3)
        self.net = Network(self.sim, paper_latency_table(), streams)
        self.metrics = Metrics()
        self.store = KVStore()
        registry = FunctionRegistry()
        registry.register(FunctionSpec("t.pair", PAIR_SRC, 10.0))
        cfg = RadicalConfig(service_jitter_sigma=0.0, conflict_detection=True)
        self.server = LVIServer(
            self.sim, self.net, registry, self.store, cfg, streams,
            self.metrics, replica=replica,
        )
        self.server.detector = ConflictDetector(metrics=self.metrics)

    def request(self, versions, execution_id="e1", skip=True):
        return LVIRequest(
            execution_id=execution_id, function_id="t.pair", args=("1",),
            read_keys=(("t", "a:1"),), write_keys=(),
            versions=versions, origin_region=Region.JP,
            skip_locks=skip,
            # The planted (unsound) claim: "pair only ever reads a:1".
            read_facts=(KeyFact("t", "exact", "a:1"),),
        )


class TestSanitizerHardFail:
    def test_planted_unsound_summary_raises(self):
        w = _ServerWorld()
        w.store.put("t", "a:1", 5)
        w.store.put("t", "a:1", 6)   # version 2: cached version 1 is stale
        w.store.put("t", "b:1", 7)
        with pytest.raises(SimulationError) as excinfo:
            w.sim.run_process(w.server._handle_lvi(
                w.request({("t", "a:1"): 1})
            ))
        cause = excinfo.value.__cause__
        assert isinstance(cause, ProtocolError)
        assert "escaped its static key constraints" in str(cause)
        assert w.metrics.counter("analysis.unsound") == 1

    def test_fresh_lock_skipped_read_validates_without_locks(self):
        w = _ServerWorld()
        w.store.put("t", "a:1", 5)
        response = w.sim.run_process(w.server._handle_lvi(
            w.request({("t", "a:1"): 1})
        ))
        assert response.ok and not response.bounced
        assert w.metrics.counter("router.lock_skipped") == 1
        assert w.metrics.counter("analysis.unsound") == 0
        # No lock state was created anywhere on the path.
        assert not w.server.locks.held_owners()

    def test_server_reprobe_falls_back_to_locked_path(self):
        w = _ServerWorld()
        w.store.put("t", "a:1", 5)
        # A writer enrolled between the runtime's probe and arrival.
        w.server.detector.enroll(
            [0], "writer", (KeyFact("t", "exact", "a:1"),))
        response = w.sim.run_process(w.server._handle_lvi(
            w.request({("t", "a:1"): 1})
        ))
        assert response.ok                      # served by the full LVI path
        assert w.metrics.counter("router.skip_fallback") == 1
        assert w.metrics.counter("router.lock_skipped") == 0

    def test_replica_bounces_locked_requests_untouched(self):
        w = _ServerWorld(replica=True)
        w.store.put("t", "a:1", 5)
        response = w.sim.run_process(w.server._handle_lvi(
            w.request({("t", "a:1"): 1}, skip=False)
        ))
        assert response.bounced and not response.ok
        # The bounce happened before any preamble mutation, so the retry
        # at the primary with the same execution id starts clean.
        assert "e1" not in w.server._seen_requests
        assert "e1" not in w.server._reply_cache
        assert w.metrics.counter("router.replica_bounce") == 1


# -- dirty-set balance across crash/restart (chaos) ---------------------------

class TestDirtyBalanceUnderFaults:
    def _run(self, plan_name, seed=0):
        from repro.faults import builtin_plans, run_chaos_case

        return run_chaos_case(
            builtin_plans()[plan_name], seed=seed, detect=True)

    def test_baseline_settles_every_enrollment(self):
        result = self._run("baseline")
        assert result.ok
        assert result.dirty_balanced
        assert result.dirty["leaked"] == 0
        assert result.dirty["enrolled"] == result.dirty["settled"]

    def test_crash_restart_balances_with_conservative_leaks(self):
        result = self._run("server-crash")
        assert result.ok and result.serializable
        assert result.sanitizer_ok
        # Every enrollment is either settled or deliberately leaked
        # (writes whose fate the crash made unknowable) — never dropped.
        assert result.dirty_balanced
        assert result.dirty["enrolled"] == (
            result.dirty["settled"] + result.dirty["leaked"])

    def test_detection_off_reports_no_dirty_fields(self):
        from repro.faults import builtin_plans, run_chaos_case

        result = run_chaos_case(builtin_plans()["baseline"], seed=0)
        assert result.dirty_balanced is None
        assert "dirty_balanced" not in result.to_dict()
