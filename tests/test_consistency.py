"""Tests for the strict-serializability checker and register checker."""

import pytest

from repro.consistency import (
    HistoryRecorder,
    RegisterOp,
    TxnRecord,
    check_register_linearizable,
    check_strict_serializability,
)
from repro.errors import ConsistencyViolation

K = ("t", "x")
K2 = ("t", "y")


def txn(txn_id, invoked, responded, reads=None, writes=None, fn="f"):
    return TxnRecord(
        txn_id=txn_id,
        function=fn,
        invoked_at=invoked,
        responded_at=responded,
        reads=dict(reads or {}),
        writes=dict(writes or {}),
    )


class TestRecorder:
    def test_begin_finish_cycle(self):
        rec = HistoryRecorder()
        r = rec.begin("social.post", now=1.0)
        rec.finish(r, now=5.0, reads={K: 1}, writes={K: 2})
        records = rec.records()
        assert len(records) == 1
        assert records[0].reads == {K: 1}
        assert not records[0].is_read_only

    def test_overlap_detection(self):
        a = txn(0, 0.0, 10.0)
        b = txn(1, 5.0, 15.0)
        c = txn(2, 11.0, 20.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestStrictSerializability:
    def test_empty_history_ok(self):
        check_strict_serializability([])

    def test_sequential_writes_ok(self):
        history = [
            txn(0, 0.0, 1.0, writes={K: 1}),
            txn(1, 2.0, 3.0, reads={K: 1}, writes={K: 2}),
            txn(2, 4.0, 5.0, reads={K: 2}),
        ]
        check_strict_serializability(history)

    def test_concurrent_reads_ok(self):
        history = [
            txn(0, 0.0, 1.0, writes={K: 1}),
            txn(1, 2.0, 9.0, reads={K: 1}),
            txn(2, 2.5, 8.0, reads={K: 1}),
        ]
        check_strict_serializability(history)

    def test_stale_read_after_write_violates(self):
        # T2 responds before T3 starts, yet T3 reads the pre-T2 version:
        # the real-time edge and the rw edge form a cycle.
        history = [
            txn(0, 0.0, 1.0, writes={K: 1}),
            txn(1, 2.0, 3.0, reads={K: 1}, writes={K: 2}),   # committed write
            txn(2, 4.0, 5.0, reads={K: 1}),                  # stale!
        ]
        with pytest.raises(ConsistencyViolation, match="cycle"):
            check_strict_serializability(history)

    def test_concurrent_stale_read_is_fine(self):
        # Same as above but T2 overlaps the writer: it may be ordered first.
        history = [
            txn(0, 0.0, 1.0, writes={K: 1}),
            txn(1, 2.0, 5.0, reads={K: 1}, writes={K: 2}),
            txn(2, 4.0, 6.0, reads={K: 1}),   # overlaps the writer: OK
        ]
        check_strict_serializability(history)

    def test_write_skew_style_cycle_detected(self):
        # T1 reads x@1 writes y@2; T2 reads y@1 writes x@2; each must
        # precede the other (rw both ways) -> cycle, not serializable.
        history = [
            txn(0, 0.0, 1.0, writes={K: 1, K2: 1}),
            txn(1, 2.0, 9.0, reads={K: 1}, writes={K2: 2}),
            txn(2, 2.0, 9.0, reads={K2: 1}, writes={K: 2}),
        ]
        with pytest.raises(ConsistencyViolation):
            check_strict_serializability(history)

    def test_duplicate_write_application_detected(self):
        # Two transactions claiming the same (key, version): the §3.6
        # "followup raced with re-execution and both applied" bug.
        history = [
            txn(0, 0.0, 1.0, writes={K: 1}),
            txn(1, 0.5, 2.0, writes={K: 1}),
        ]
        with pytest.raises(ConsistencyViolation, match="duplicate"):
            check_strict_serializability(history)

    def test_read_of_initial_version_ok(self):
        check_strict_serializability([txn(0, 0.0, 1.0, reads={K: 0})])

    def test_long_chain_performance_smoke(self):
        history = []
        for i in range(300):
            history.append(
                txn(i, float(2 * i), float(2 * i + 1), reads={K: i}, writes={K: i + 1})
            )
        check_strict_serializability(history)


class TestRegisterChecker:
    def test_trivial_sequential(self):
        ops = [
            RegisterOp(0, "write", "a", 0.0, 1.0),
            RegisterOp(1, "read", "a", 2.0, 3.0),
        ]
        assert check_register_linearizable(ops)

    def test_read_of_never_written_value_fails(self):
        ops = [
            RegisterOp(0, "write", "a", 0.0, 1.0),
            RegisterOp(1, "read", "b", 2.0, 3.0),
        ]
        assert not check_register_linearizable(ops)

    def test_stale_read_fails(self):
        ops = [
            RegisterOp(0, "write", "a", 0.0, 1.0),
            RegisterOp(1, "write", "b", 2.0, 3.0),
            RegisterOp(2, "read", "a", 4.0, 5.0),
        ]
        assert not check_register_linearizable(ops)

    def test_concurrent_write_read_either_order(self):
        ops = [
            RegisterOp(0, "write", "a", 0.0, 10.0),
            RegisterOp(1, "read", None, 1.0, 2.0),   # may linearize before
        ]
        assert check_register_linearizable(ops, initial=None)

    def test_overlapping_writes_any_order(self):
        ops = [
            RegisterOp(0, "write", "a", 0.0, 10.0),
            RegisterOp(1, "write", "b", 0.0, 10.0),
            RegisterOp(2, "read", "a", 11.0, 12.0),
        ]
        assert check_register_linearizable(ops)

    def test_empty_history(self):
        assert check_register_linearizable([])

    def test_initial_value_read(self):
        ops = [RegisterOp(0, "read", None, 0.0, 1.0)]
        assert check_register_linearizable(ops, initial=None)


class TestAbdStoreIsLinearizable:
    """End-to-end: histories produced by the ABD quorum store check out."""

    def test_concurrent_clients_linearizable(self):
        from repro.sim import Network, RandomStreams, Region, Simulator, paper_latency_table
        from repro.storage import ReplicatedStore

        sim = Simulator()
        net = Network(sim, paper_latency_table(), RandomStreams(11))
        store = ReplicatedStore(sim, net, [Region.VA, Region.OH, Region.OR])
        ops = []
        op_ids = iter(range(100))

        def writer(region, value, delay):
            client = store.client(region, f"w-{value}")

            def flow():
                yield sim.timeout(delay)
                start = sim.now
                yield from client.write("t", "reg", value)
                ops.append(RegisterOp(next(op_ids), "write", value, start, sim.now))

            return flow()

        def reader(region, delay):
            client = store.client(region, f"r-{region}-{delay}")

            def flow():
                yield sim.timeout(delay)
                start = sim.now
                value = yield from client.read("t", "reg")
                ops.append(RegisterOp(next(op_ids), "read", value, start, sim.now))

            return flow()

        procs = [
            sim.spawn(writer(Region.CA, "v1", 0.0)),
            sim.spawn(writer(Region.JP, "v2", 30.0)),
            sim.spawn(reader(Region.IE, 10.0)),
            sim.spawn(reader(Region.DE, 50.0)),
            sim.spawn(reader(Region.VA, 90.0)),
        ]
        sim.run()
        assert all(p.done for p in procs)
        assert check_register_linearizable(ops, initial=None)
