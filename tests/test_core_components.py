"""Unit tests for core components: registry, storage library, runtime edges."""

import pytest

from repro.analysis import derive_rwset
from repro.core import (
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    PATH_DIRECT,
    RadicalConfig,
    SnapshotReader,
    SpeculativeEnv,
)
from repro.errors import FunctionNotRegistered, NonDeterminismError
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import Item, KVStore, NearUserCache
from repro.wasm import VM


class TestFunctionRegistry:
    def test_register_and_get(self):
        reg = FunctionRegistry()
        record = reg.register(FunctionSpec("a.f", "def f(x):\n    return x", 10.0))
        assert reg.get("a.f") is record
        assert "a.f" in reg
        assert len(reg) == 1

    def test_unknown_function_raises(self):
        with pytest.raises(FunctionNotRegistered):
            FunctionRegistry().get("ghost")

    def test_reregistration_replaces(self):
        reg = FunctionRegistry()
        reg.register(FunctionSpec("a.f", "def f(x):\n    return 1", 10.0))
        reg.register(FunctionSpec("a.f", "def f(x):\n    return 2", 20.0))
        assert reg.get("a.f").service_time_ms == 20.0
        assert len(reg) == 1

    def test_nondeterministic_function_rejected_at_registration(self):
        reg = FunctionRegistry()
        with pytest.raises(NonDeterminismError):
            reg.register(FunctionSpec("a.bad", "def f():\n    return now()", 10.0))

    def test_unanalyzable_function_registered_without_frw(self):
        # Blow the analysis budget but stay compilable: the function
        # registers with analyzable=False and no f^rw.
        big_body = "\n".join(f"    v{i} = x + {i}" for i in range(400))
        src = f"def f(x):\n{big_body}\n    return db_get('t', f'k:{{v399}}')"
        reg = FunctionRegistry(analysis_node_budget=100)
        record = reg.register(FunctionSpec("a.huge", src, 10.0))
        assert not record.analyzable
        assert record.frw is None

    def test_ids_sorted(self):
        reg = FunctionRegistry()
        reg.register(FunctionSpec("b.f", "def f():\n    return 1", 1.0))
        reg.register(FunctionSpec("a.f", "def f():\n    return 1", 1.0))
        assert reg.ids() == ["a.f", "b.f"]


class TestSnapshotReader:
    def test_pins_value_and_version_on_first_read(self):
        cache = NearUserCache("jp")
        cache.install("t", "k", Item({"x": 1}, 5))
        snap = SnapshotReader(cache)
        assert snap.read("t", "k") == {"x": 1}
        assert snap.versions[("t", "k")] == 5
        # Cache updated after pinning: the snapshot must not move.
        cache.install("t", "k", Item({"x": 2}, 6))
        assert snap.read("t", "k") == {"x": 1}
        assert snap.version_of("t", "k") == 5

    def test_miss_pins_sentinel(self):
        snap = SnapshotReader(NearUserCache("jp"))
        assert snap.read("t", "nope") is None
        assert snap.version_of("t", "nope") == -1

    def test_absent_marker_reads_none_with_version_zero(self):
        cache = NearUserCache("jp")
        cache.install("t", "ghost", None)
        snap = SnapshotReader(cache)
        assert snap.read("t", "ghost") is None
        assert snap.version_of("t", "ghost") == 0

    def test_reads_return_independent_copies(self):
        # f^rw may retain mutation statements; its mutations must never
        # reach either the cache or the later speculative execution.
        cache = NearUserCache("jp")
        cache.install("t", "k", Item({"items": [1]}, 1))
        snap = SnapshotReader(cache)
        first = snap.read("t", "k")
        first["items"].append(999)
        second = snap.read("t", "k")
        assert second == {"items": [1]}
        assert cache.lookup("t", "k").value == {"items": [1]}


class TestSpeculativeEnv:
    def _env(self, data=None):
        cache = NearUserCache("jp")
        for (t, k), (v, ver) in (data or {}).items():
            cache.install(t, k, Item(v, ver))
        return SpeculativeEnv(SnapshotReader(cache)), cache

    def test_writes_buffered_not_applied(self):
        env, cache = self._env()
        env.db_put("t", "k", {"v": 1})
        assert not cache.contains("t", "k")
        assert env.buffered_writes() == [("t", "k", {"v": 1})]

    def test_read_your_own_write(self):
        env, _ = self._env({("t", "k"): ("old", 1)})
        env.db_put("t", "k", "new")
        assert env.db_get("t", "k") == "new"

    def test_own_write_read_returns_copy(self):
        env, _ = self._env()
        env.db_put("t", "k", {"list": []})
        got = env.db_get("t", "k")
        got["list"].append(1)
        assert env.buffered_writes()[0][2] == {"list": []}

    def test_last_write_wins_in_buffer(self):
        env, _ = self._env()
        env.db_put("t", "k", 1)
        env.db_put("t", "k", 2)
        writes = env.buffered_writes()
        assert writes == [("t", "k", 2)]

    def test_write_order_is_first_write_order(self):
        env, _ = self._env()
        env.db_put("t", "b", 1)
        env.db_put("t", "a", 1)
        env.db_put("t", "b", 2)
        assert [k for (_t, k, _v) in env.buffered_writes()] == ["b", "a"]


class TestRuntimeEdgePaths:
    def _world(self, source, service=20.0, node_budget=50_000):
        sim = Simulator()
        streams = RandomStreams(4)
        net = Network(sim, paper_latency_table(), streams)
        metrics = Metrics()
        config = RadicalConfig(service_jitter_sigma=0.0)
        registry = FunctionRegistry(analysis_node_budget=node_budget)
        registry.register(FunctionSpec("t.fn", source, service))
        store = KVStore()
        LVIServer(sim, net, registry, store, config, streams, metrics)
        cache = NearUserCache(Region.CA)
        runtime = NearUserRuntime(sim, net, Region.CA, cache, registry, config, streams, metrics)
        return sim, runtime, store, metrics

    def test_unanalyzable_function_takes_direct_path(self):
        big_body = "\n".join(f"    v{i} = x + {i}" for i in range(400))
        src = f"def f(x):\n{big_body}\n    return db_get('t', f'k:{{v399}}')"
        sim, runtime, store, metrics = self._world(src, node_budget=100)
        store.put("t", "k:399", "found")
        outcome = sim.run_process(runtime.invoke("t.fn", [0]))
        assert outcome.path == PATH_DIRECT
        assert outcome.result == "found"
        assert metrics.counter("path.direct") == 1

    def test_pure_function_speculates_with_empty_sets(self):
        sim, runtime, _store, metrics = self._world("def f(x):\n    busy(2000)\n    return x * 2")
        outcome = sim.run_process(runtime.invoke("t.fn", [21]))
        assert outcome.result == 42
        assert outcome.path == "speculative"
        assert metrics.counter("validation.success") == 1

    def test_frw_runtime_trap_falls_back_to_direct(self):
        # f^rw traps at runtime (indexing a miss): §3.3's failure handling
        # routes the request near storage instead of crashing.
        src = """
def f(uid):
    cfg = db_get("cfg", "routing")
    return db_get("data", f"d:{cfg['shard']}:{uid}")
"""
        sim, runtime, store, metrics = self._world(src)
        # The primary HAS the config (the server-side execution succeeds),
        # but the cold cache returns None for it, so f^rw traps indexing
        # None and the runtime must route the request near storage.
        store.put("cfg", "routing", {"shard": 3})
        store.put("data", "d:3:u", "found")
        outcome = sim.run_process(runtime.invoke("t.fn", ["u"]))
        assert outcome.path == PATH_DIRECT
        assert metrics.counter("frw.runtime_failure") == 1

    def test_execution_ids_unique(self):
        sim, runtime, _store, _metrics = self._world("def f(x):\n    return x")

        def flow():
            a = yield sim.spawn(runtime.invoke("t.fn", [1]))
            b = yield sim.spawn(runtime.invoke("t.fn", [2]))
            return a, b

        a, b = sim.run_process(flow())
        assert a.result == 1 and b.result == 2


class TestNoReplySentinel:
    def test_handler_returning_no_reply_stays_silent(self):
        from repro.sim.network import NO_REPLY

        sim = Simulator()
        net = Network(sim, paper_latency_table(), RandomStreams(0))

        def handler(payload, src):
            if False:
                yield
            return NO_REPLY

        net.serve("mute", Region.VA, handler)
        net.register("client", Region.CA)

        def flow():
            from repro.sim import RpcTimeout

            try:
                yield from net.call("client", "mute", "ping", timeout=300.0)
            except RpcTimeout:
                return "timed-out"

        assert sim.run_process(flow()) == "timed-out"
