"""Integration tests for the LVI protocol: every path of Figure 3.

These drive real runtimes, a real server, and real storage through the
simulator, and assert both behaviour (results, cache state, primary state)
and protocol bookkeeping (locks released, intents settled).
"""

import pytest

from repro.core import (
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    PATH_BACKUP,
    PATH_MISS,
    PATH_SPECULATIVE,
    RadicalConfig,
)
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache


READ_SRC = '''
def read_item(k):
    item = db_get("items", f"item:{k}")
    busy(10000)
    return item
'''

WRITE_SRC = '''
def write_item(k, v):
    old = db_get("items", f"item:{k}")
    busy(5000)
    db_put("items", f"item:{k}", v)
    return old
'''

COUNTER_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    db_put("counters", f"c:{k}", count + 1)
    return count + 1
'''


class World:
    """A two-region Radical deployment for protocol tests."""

    def __init__(self, seed=1, config=None, regions=(Region.JP, Region.CA)):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.net = Network(self.sim, paper_latency_table(), self.streams)
        self.metrics = Metrics()
        self.config = config or RadicalConfig(service_jitter_sigma=0.0)
        self.store = KVStore()
        self.registry = FunctionRegistry()
        self.registry.register(FunctionSpec("t.read", READ_SRC, 100.0))
        self.registry.register(FunctionSpec("t.write", WRITE_SRC, 50.0))
        self.registry.register(FunctionSpec("t.bump", COUNTER_SRC, 20.0))
        self.server = LVIServer(
            self.sim, self.net, self.registry, self.store,
            self.config, self.streams, self.metrics,
        )
        self.runtimes = {}
        self.caches = {}
        for region in regions:
            cache = NearUserCache(region)
            self.caches[region] = cache
            self.runtimes[region] = NearUserRuntime(
                self.sim, self.net, region, cache, self.registry,
                self.config, self.streams, self.metrics,
            )

    def invoke(self, region, function_id, args):
        """Run one invocation to completion and return the outcome."""
        outcome = self.sim.run_process(self.runtimes[region].invoke(function_id, args))
        return outcome

    def drain(self, ms=20_000.0):
        self.sim.run(until=self.sim.now + ms)


@pytest.fixture
def world():
    return World()


class TestSpeculativePath:
    def test_warm_read_is_speculative(self, world):
        world.store.put("items", "item:a", "v")
        world.invoke(Region.JP, "t.read", ["a"])  # miss, warms cache
        outcome = world.invoke(Region.JP, "t.read", ["a"])
        assert outcome.path == PATH_SPECULATIVE
        assert outcome.result == "v"

    def test_speculative_latency_hides_lvi(self, world):
        # exec 100ms > JP<->VA 146+proc: latency = invoke + max components.
        world.store.put("items", "item:a", "v")
        world.invoke(Region.JP, "t.read", ["a"])
        outcome = world.invoke(Region.JP, "t.read", ["a"])
        # invoke(12)+load(1)+frw(~0)+max(100, 146+2) ~= 161
        assert 155 <= outcome.latency_ms <= 170

    def test_write_applied_to_primary_via_followup(self, world):
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        outcome = world.invoke(Region.JP, "t.write", ["a", "v1"])
        assert outcome.path == PATH_SPECULATIVE
        assert outcome.result == "v0"
        world.drain()
        item = world.store.get("items", "item:a")
        assert item.value == "v1"
        assert item.version == 2
        assert world.metrics.counter("followup.applied") == 1

    def test_cache_updated_with_new_version_before_followup(self, world):
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        world.invoke(Region.JP, "t.write", ["a", "v1"])
        entry = world.caches[Region.JP].lookup("items", "item:a")
        assert entry.value == "v1"
        assert entry.version == 2

    def test_read_only_function_releases_locks_immediately(self, world):
        world.store.put("items", "item:a", "v")
        world.invoke(Region.JP, "t.read", ["a"])
        world.invoke(Region.JP, "t.read", ["a"])
        assert world.server.locks.holders(("items", "item:a")) == (set(), None)

    def test_all_locks_released_after_drain(self, world):
        world.store.put("items", "item:a", "v0")
        for _ in range(3):
            world.invoke(Region.JP, "t.write", ["a", "x"])
        world.drain()
        assert world.server.locks.holders(("items", "item:a")) == (set(), None)
        assert world.server.intents.pending() == []


class TestMissPath:
    def test_cold_cache_takes_miss_path(self, world):
        world.store.put("items", "item:a", "v")
        outcome = world.invoke(Region.JP, "t.read", ["a"])
        assert outcome.path == PATH_MISS
        assert outcome.result == "v"

    def test_miss_repairs_cache(self, world):
        world.store.put("items", "item:a", "v")
        world.invoke(Region.JP, "t.read", ["a"])
        entry = world.caches[Region.JP].lookup("items", "item:a")
        assert entry.value == "v" and entry.version == 1

    def test_miss_of_absent_key_caches_absence(self, world):
        outcome = world.invoke(Region.JP, "t.read", ["ghost"])
        assert outcome.path == PATH_MISS
        assert outcome.result is None
        # Second read speculates successfully on the cached absence.
        outcome2 = world.invoke(Region.JP, "t.read", ["ghost"])
        assert outcome2.path == PATH_SPECULATIVE
        assert outcome2.result is None

    def test_miss_latency_close_to_near_storage_execution(self, world):
        world.store.put("items", "item:a", "v")
        outcome = world.invoke(Region.JP, "t.read", ["a"])
        # invoke + one-way + validate + exec + one-way ~= 13+73+2+100+73.
        assert 255 <= outcome.latency_ms <= 275


class TestBackupPath:
    def test_stale_cache_detected_and_backup_result_returned(self, world):
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])   # JP caches v0@1
        world.invoke(Region.CA, "t.read", ["a"])   # CA caches v0@1
        world.invoke(Region.CA, "t.write", ["a", "v1"])  # bumps to v1@2
        world.drain()
        outcome = world.invoke(Region.JP, "t.read", ["a"])  # JP stale
        assert outcome.path == PATH_BACKUP
        assert outcome.result == "v1"

    def test_backup_repairs_stale_cache(self, world):
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        world.invoke(Region.CA, "t.read", ["a"])
        world.invoke(Region.CA, "t.write", ["a", "v1"])
        world.drain()
        world.invoke(Region.JP, "t.read", ["a"])
        entry = world.caches[Region.JP].lookup("items", "item:a")
        assert entry.value == "v1" and entry.version == 2
        # And the next request speculates again.
        outcome = world.invoke(Region.JP, "t.read", ["a"])
        assert outcome.path == PATH_SPECULATIVE

    def test_backup_write_applied_directly(self, world):
        world.store.put("counters", "c:x", 10)
        world.invoke(Region.JP, "t.bump", ["x"])  # miss -> backup exec
        assert world.store.get("counters", "c:x").value == 11
        world.drain()
        assert world.server.intents.pending() == []

    def test_speculative_writes_discarded_on_failure(self, world):
        # Both regions warm, CA writes, JP then writes on stale cache: JP's
        # speculative write must be discarded and the backup's used.
        world.store.put("counters", "c:x", 0)
        world.invoke(Region.JP, "t.bump", ["x"])
        world.drain()
        world.invoke(Region.CA, "t.bump", ["x"])
        world.drain()
        outcome = world.invoke(Region.JP, "t.bump", ["x"])  # stale: saw 1
        world.drain()
        assert outcome.path == PATH_BACKUP
        assert outcome.result == 3  # backup saw the true count 2
        assert world.store.get("counters", "c:x").value == 3


class TestFollowupLossAndReexecution:
    def test_lost_followup_triggers_deterministic_reexecution(self):
        world = World(config=RadicalConfig(service_jitter_sigma=0.0, followup_timeout_ms=500.0))
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        # Drop everything JP -> VA after the LVI request goes out... we
        # instead drop just followups by partitioning after the response.
        outcome_proc = world.sim.spawn(
            world.runtimes[Region.JP].invoke("t.write", ["a", "v1"])
        )
        world.sim.run(until_event=outcome_proc.done_event)
        assert outcome_proc.result.path == PATH_SPECULATIVE
        # The client already has its answer; now eat the followup.
        world.net.partition(Region.JP, Region.VA)
        world.drain(5_000.0)
        item = world.store.get("items", "item:a")
        assert item.value == "v1"  # re-execution applied the same write
        assert item.version == 2
        assert world.metrics.counter("reexecution.count") == 1
        assert world.server.intents.pending() == []
        assert world.server.locks.holders(("items", "item:a")) == (set(), None)

    def test_duplicate_followup_discarded(self):
        world = World()
        world.net.set_duplicate_probability(Region.JP, Region.VA, 1.0)
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        world.invoke(Region.JP, "t.write", ["a", "v1"])
        world.drain()
        item = world.store.get("items", "item:a")
        assert item.value == "v1"
        assert item.version == 2  # applied exactly once
        assert world.metrics.counter("followup.discarded") >= 1

    def test_late_followup_after_reexecution_discarded(self):
        world = World(config=RadicalConfig(service_jitter_sigma=0.0, followup_timeout_ms=200.0))
        world.store.put("items", "item:a", "v0")
        world.invoke(Region.JP, "t.read", ["a"])
        # Delay the JP->VA link so the followup arrives after the timer.
        proc = world.sim.spawn(world.runtimes[Region.JP].invoke("t.write", ["a", "v1"]))
        world.sim.run(until_event=proc.done_event)
        world.net.set_extra_delay(Region.JP, Region.VA, 1_000.0)
        world.drain(10_000.0)
        item = world.store.get("items", "item:a")
        assert item.value == "v1"
        assert item.version == 2  # re-execution applied; followup discarded
        assert world.metrics.counter("reexecution.count") == 1


class TestLocking:
    def test_concurrent_writers_serialize(self, world):
        world.store.put("counters", "c:x", 0)
        # Warm both regions.
        world.invoke(Region.JP, "t.bump", ["x"])
        world.drain()
        world.invoke(Region.CA, "t.read", ["a"])  # unrelated; keeps caches alive
        # Issue two bumps concurrently from both regions.
        p1 = world.sim.spawn(world.runtimes[Region.JP].invoke("t.bump", ["x"]))
        p2 = world.sim.spawn(world.runtimes[Region.CA].invoke("t.bump", ["x"]))
        world.sim.run(until_event=world.sim.all_of([p1.done_event, p2.done_event]))
        world.drain()
        # Exactly one increment each: final count is 3 (1 warmup + 2).
        assert world.store.get("counters", "c:x").value == 3

    def test_no_deadlock_under_concurrent_mixed_load(self, world):
        world.store.put("items", "item:a", "v")
        world.store.put("counters", "c:x", 0)
        procs = []
        for i in range(10):
            region = Region.JP if i % 2 == 0 else Region.CA
            fid = "t.bump" if i % 3 == 0 else "t.read"
            args = ["x"] if fid == "t.bump" else ["a"]
            procs.append(world.sim.spawn(world.runtimes[region].invoke(fid, args)))
        world.sim.run(until_event=world.sim.all_of([p.done_event for p in procs]))
        assert all(p.done for p in procs)
        world.drain()
        assert world.server.intents.pending() == []


class TestAblations:
    def test_no_overlap_is_slower(self):
        fast = World(seed=3)
        slow = World(seed=3, config=RadicalConfig(service_jitter_sigma=0.0, speculate=False))
        for w in (fast, slow):
            w.store.put("items", "item:a", "v")
            w.invoke(Region.JP, "t.read", ["a"])
        a = fast.invoke(Region.JP, "t.read", ["a"]).latency_ms
        b = slow.invoke(Region.JP, "t.read", ["a"]).latency_ms
        # Without overlap the RTT and the execution serialize.
        assert b > a + 90

    def test_two_rtt_commit_is_slower_for_writes(self):
        one = World(seed=3)
        two = World(seed=3, config=RadicalConfig(service_jitter_sigma=0.0, single_request=False))
        for w in (one, two):
            w.store.put("items", "item:a", "v0")
            w.invoke(Region.JP, "t.read", ["a"])
        a = one.invoke(Region.JP, "t.write", ["a", "x"]).latency_ms
        b = two.invoke(Region.JP, "t.write", ["a", "x"]).latency_ms
        assert b > a + 100  # the second JP<->VA round trip


class TestHistoryIsLinearizable:
    def test_concurrent_cross_region_history_strictly_serializable(self):
        from repro.consistency import HistoryRecorder, check_strict_serializability

        world = World(seed=5)
        world.store.put("counters", "c:x", 0)
        world.store.put("items", "item:a", "v")
        history = HistoryRecorder()

        def client(region, ops):
            def flow():
                for fid, args in ops:
                    rec = history.begin(fid, world.sim.now)
                    outcome = yield world.sim.spawn(
                        world.runtimes[region].invoke(fid, args)
                    )
                    history.finish(
                        rec, world.sim.now,
                        reads=outcome.read_versions,
                        writes=outcome.write_versions,
                    )

            return flow()

        ops_a = [("t.bump", ["x"]), ("t.read", ["a"]), ("t.bump", ["x"])] * 3
        ops_b = [("t.read", ["a"]), ("t.bump", ["x"]), ("t.bump", ["x"])] * 3
        p1 = world.sim.spawn(client(Region.JP, ops_a))
        p2 = world.sim.spawn(client(Region.CA, ops_b))
        world.sim.run(until_event=world.sim.all_of([p1.done_event, p2.done_event]))
        world.drain()
        check_strict_serializability(history.records())
        # And the counter equals the number of bumps: no lost updates.
        assert world.store.get("counters", "c:x").value == 12
