"""Smoke tests: every shipped example must run cleanly end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "path=miss" in out
        assert "path=speculative" in out
        assert "version 2" in out

    def test_hotel_booking_race(self):
        out = run_example("hotel_booking.py")
        assert "strictly serializable" in out
        assert out.count("'ok': True") == 1  # exactly one winner

    def test_failure_injection(self):
        out = run_example("failure_injection.py")
        assert out.count("PASS") == 3
        assert "All failure scenarios behaved as the paper specifies." in out

    @pytest.mark.slow
    def test_social_network(self):
        out = run_example("social_network.py", timeout=420.0)
        assert "Improvement (%)" in out
        assert "Per-region latency" in out

    def test_analyze_functions(self):
        out = run_example("analyze_functions.py")
        assert "All 27 functions" in out
        assert "social.post" in out
        assert "[dependent]" in out

    @pytest.mark.slow
    def test_trace_breakdown(self):
        out = run_example("trace_breakdown.py", timeout=420.0)
        assert "0 orphans" in out
        assert "phase.spec_overlap" in out
        assert "Critical-path signatures" in out
        assert "identical summaries: True" in out
