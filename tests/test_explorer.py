"""The coverage-guided chaos explorer and its supporting machinery:
plan serde round-trips, plan resolution (globs, @file references),
schedule generation, delta-debug shrinking, corpus integrity, full-run
determinism — and the planted-bug proof that the explorer actually finds
and minimizes an exactly-once violation within a smoke-sized budget."""

import dataclasses
import json
import math
import os

import pytest

from repro.errors import FaultConfigError
from repro.faults import (
    CrashWindow,
    DelayWindow,
    DropWindow,
    DuplicateWindow,
    FaultPlan,
    FollowupLossWindow,
    MigrationWindow,
    PartitionWindow,
    PoPCrashWindow,
    PoPPartitionWindow,
    SlowServerWindow,
    SurgeWindow,
    plan_from_dict,
    plan_hash,
    plan_to_dict,
)
from repro.faults.serde import WINDOW_KINDS, load_plan_file


def _one_of_each():
    """A valid plan touching every window kind (mesh vocabulary)."""
    return FaultPlan(
        name="everything",
        actions=(
            PartitionWindow("jp", "va", 100.0, 400.0),
            DropWindow("ca", "va", 500.0, 800.0, 0.5),
            DuplicateWindow("jp", "va", 900.0, 1_200.0, 0.25,
                            bidirectional=True),
            DelayWindow("ca", "va", 1_300.0, 30.0, 1_600.0),
            FollowupLossWindow(1_700.0, 1_900.0),
            CrashWindow("lvi-server", 2_000.0, 2_500.0),
            SurgeWindow("jp", 2_600.0, 2_900.0, rate_rps=80.0),
            SlowServerWindow("lvi-server", 3_000.0, 3_300.0, proc_ms=40.0),
            PoPPartitionWindow("ca", 3_400.0, 3_700.0, peers=("jp", "ie")),
            PoPCrashWindow("ie", 3_800.0, 4_200.0),
            MigrationWindow("jp-0", "ca", 4_300.0),
        ),
        description="one window of every kind",
        mesh=True,
    )


class TestSerde:
    def test_every_window_kind_round_trips(self):
        plan = _one_of_each()
        assert len({type(a) for a in plan.actions}) == len(WINDOW_KINDS)
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored == plan
        assert plan_hash(restored) == plan_hash(plan)

    def test_dicts_are_json_safe_including_inf(self):
        plan = FaultPlan(
            "open", (DropWindow("jp", "va", 0.0, math.inf, 1.0),)
        )
        encoded = json.dumps(plan_to_dict(plan))  # inf would raise here
        assert '"inf"' in encoded
        restored = plan_from_dict(json.loads(encoded))
        assert restored.actions[0].end_ms == math.inf

    def test_none_and_tuple_fields_round_trip(self):
        plan = FaultPlan(
            "mixed",
            (
                CrashWindow("lvi-server", 100.0, None),  # never restarts
                PoPPartitionWindow("jp", 500.0, 900.0, peers=("ca", "ie")),
            ),
            mesh=True,
        )
        restored = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert restored == plan
        assert restored.actions[1].peers == ("ca", "ie")  # tuple, not list

    def test_window_methods_attached(self):
        w = PartitionWindow("jp", "va", 100.0, 400.0)
        assert PartitionWindow.from_dict(w.to_dict()) == w
        with pytest.raises(FaultConfigError, match="decodes to"):
            CrashWindow.from_dict(w.to_dict())

    @pytest.mark.parametrize("raw,message", [
        ("nope", "must be an object"),
        ({"actions": []}, "needs a non-empty 'name'"),
        ({"name": "p", "retries": 3}, "unknown fault-plan key"),
        ({"name": "p", "actions": [{"kind": "meteor"}]}, "unknown action kind"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a", "dst": "b",
                                    "start_ms": 0, "severity": 9}]},
         "unknown field"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a"}]},
         "missing field"),
        ({"name": "p", "actions": [{"kind": "drop", "src": 3, "dst": "b",
                                    "start_ms": 0}]},
         "must be string"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a", "dst": "b",
                                    "start_ms": "soon"}]},
         "must be number"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a", "dst": "b",
                                    "start_ms": 0, "bidirectional": 1}]},
         "must be boolean"),
        ({"name": "p", "actions": [{"kind": "pop_partition", "region": "jp",
                                    "start_ms": 0, "peers": [1, 2]}]},
         "must be list of strings"),
    ])
    def test_schema_violations_fail_actionably(self, raw, message):
        with pytest.raises(FaultConfigError, match=message):
            plan_from_dict(raw)

    def test_hash_is_content_addressed(self):
        a = FaultPlan("p", (DropWindow("jp", "va", 0.0, 100.0),))
        b = FaultPlan("p", (DropWindow("jp", "va", 0.0, 100.0),))
        assert plan_hash(a) == plan_hash(b)
        c = dataclasses.replace(
            a, actions=(DropWindow("jp", "va", 0.0, 101.0),)
        )
        assert plan_hash(c) != plan_hash(a)

    def test_load_plan_file(self, tmp_path):
        plan = _one_of_each()
        single = tmp_path / "one.json"
        single.write_text(json.dumps(plan_to_dict(plan)))
        assert load_plan_file(str(single)) == [plan]
        many = tmp_path / "many.json"
        many.write_text(json.dumps([plan_to_dict(plan)] * 2))
        assert len(load_plan_file(str(many))) == 2
        # Corpus-entry wrappers are unwrapped to their inner plan.
        wrapped = tmp_path / "entry.json"
        wrapped.write_text(json.dumps(
            {"schema": 1, "hash": plan_hash(plan),
             "plan": plan_to_dict(plan)}
        ))
        assert load_plan_file(str(wrapped)) == [plan]
        with pytest.raises(FaultConfigError, match="not found"):
            load_plan_file(str(tmp_path / "ghost.json"))
        broken = tmp_path / "broken.json"
        broken.write_text("{oops")
        with pytest.raises(FaultConfigError, match="not valid JSON"):
            load_plan_file(str(broken))


class TestResolvePlans:
    def test_globs_match_builtins(self):
        from repro.faults import builtin_plans, resolve_plans

        mesh = resolve_plans("mesh-*")
        assert {p.name for p in mesh} == {
            n for n in builtin_plans() if n.startswith("mesh-")
        }
        # Duplicate selections collapse.
        assert len(resolve_plans("mesh-*,mesh-pop-crash")) == len(mesh)

    def test_glob_with_no_match_fails(self):
        from repro.faults import resolve_plans

        with pytest.raises(FaultConfigError, match="no builtin plan matches"):
            resolve_plans("solar-*")

    def test_file_reference(self, tmp_path):
        from repro.faults import resolve_plans

        plan = FaultPlan("from-file", (DropWindow("jp", "va", 0.0, 100.0),))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan_to_dict(plan)))
        resolved = resolve_plans(f"baseline,@{path}")
        assert [p.name for p in resolved] == ["baseline", "from-file"]

    def test_unknown_name_still_fails(self):
        from repro.faults import resolve_plans

        with pytest.raises(FaultConfigError, match="unknown plan"):
            resolve_plans("solar-flare")


class TestGenerator:
    def test_same_seed_same_schedules(self):
        from repro.faults.generate import SHAPES, ScheduleGenerator

        a, b = ScheduleGenerator(11), ScheduleGenerator(11)
        for i in range(20):
            shape = SHAPES[i % len(SHAPES)]
            assert a.sample(shape) == b.sample(shape)

    def test_all_samples_validate_and_match_shape(self):
        from repro.faults.generate import SHAPES, ScheduleGenerator

        gen = ScheduleGenerator(3)
        for i in range(40):
            shape = SHAPES[i % len(SHAPES)]
            plan = gen.sample(shape)
            plan.validate()  # must not raise
            assert plan.replicated == (shape == "replicated")
            assert plan.mesh == (shape == "mesh")

    def test_generator_covers_the_full_window_vocabulary(self):
        from repro.faults.generate import SHAPES, ScheduleGenerator
        from repro.faults.serde import _KIND_OF

        gen = ScheduleGenerator(5)
        seen = set()
        for i in range(120):
            plan = gen.sample(SHAPES[i % len(SHAPES)])
            seen.update(_KIND_OF[type(a)] for a in plan.actions)
        assert seen == set(WINDOW_KINDS)

    def test_generator_expresses_the_raft_leader_builtin(self):
        # The hand-written raft-leader-mid-validate plan must be a point
        # in the generator's space: a replicated-shape crash window naming
        # the dynamic "raft-leader" target, with a restart.
        from repro.faults.generate import ScheduleGenerator

        gen = ScheduleGenerator(1)
        for _ in range(200):
            plan = gen.sample("replicated")
            crashes = [a for a in plan.actions
                       if isinstance(a, CrashWindow)
                       and a.target == "raft-leader"]
            if crashes:
                assert crashes[0].restart_at_ms is not None
                return
        pytest.fail("no raft-leader crash generated in 200 samples")

    def test_mutate_returns_valid_neighbours(self):
        from repro.faults.generate import ScheduleGenerator

        gen = ScheduleGenerator(9)
        plan = gen.sample("mesh")
        for _ in range(10):
            plan = gen.mutate(plan, "mesh")
            plan.validate()


class TestShrink:
    def test_drops_irrelevant_windows(self):
        from repro.faults.shrink import shrink_plan

        culprit = DuplicateWindow("jp", "va", 0.0, 1_000.0, 1.0)
        plan = FaultPlan("fat", (
            culprit,
            DelayWindow("ca", "va", 100.0, 20.0, 500.0),
            FollowupLossWindow(1_200.0, 1_400.0),
        ))

        def oracle(candidate):
            return any(isinstance(a, DuplicateWindow)
                       for a in candidate.actions)

        minimal = shrink_plan(plan, oracle)
        assert len(minimal.actions) == 1
        assert isinstance(minimal.actions[0], DuplicateWindow)
        assert minimal.name == "fat-min"

    def test_narrows_time_ranges(self):
        from repro.faults.shrink import shrink_plan

        plan = FaultPlan("wide", (DropWindow("jp", "va", 0.0, 4_000.0, 1.0),))

        def oracle(candidate):
            # Fails whenever the window covers t=200.
            a = candidate.actions[0]
            return a.start_ms <= 200.0 <= a.end_ms

        minimal = shrink_plan(plan, oracle)
        span = minimal.actions[0].end_ms - minimal.actions[0].start_ms
        assert span < 4_000.0  # strictly narrowed
        assert minimal.actions[0].start_ms <= 200.0 <= minimal.actions[0].end_ms

    def test_probe_budget_bounds_oracle_calls(self):
        from repro.faults.shrink import shrink_plan

        plan = FaultPlan("fat", tuple(
            DropWindow("jp", "va", 1_000.0 * i, 1_000.0 * i + 500.0, 1.0)
            for i in range(4)
        ))
        calls = []

        def oracle(candidate):
            calls.append(1)
            return True

        shrink_plan(plan, oracle, max_probes=5)
        assert len(calls) <= 5


class TestExplorer:
    def test_same_seed_and_budget_byte_identical(self):
        from repro.faults.explorer import explore

        a = explore(budget=6, seed=3).to_payload()
        b = explore(budget=6, seed=3).to_payload()
        assert (json.dumps(a, indent=2, sort_keys=True, default=str)
                == json.dumps(b, indent=2, sort_keys=True, default=str))

    def test_green_stack_yields_no_violations_and_novelty(self):
        from repro.faults.explorer import explore

        record = explore(budget=8, seed=3)
        assert record.schedules_tried == 8
        assert record.violations == []
        assert record.novel_schedules >= 1  # the first case always is
        assert record.coverage_curve == sorted(record.coverage_curve)
        assert record.distinct_signatures >= 1
        assert len(record.coverage_curve) == 8

    def test_rejects_unknown_shape(self):
        from repro.faults.explorer import explore

        with pytest.raises(FaultConfigError, match="unknown deployment shape"):
            explore(budget=1, shapes=("torus",))

    def test_planted_exactly_once_bug_found_and_minimized(self, monkeypatch):
        # Weaken the followup commit point — ignore the intent-CAS verdict
        # so duplicate or late followups re-apply writes — and the
        # explorer must find an invariant violation within a smoke-sized
        # budget and shrink it to <= 2 windows.
        from repro.core.server import LVIServer
        from repro.faults.explorer import explore
        from repro.storage import IdempotencyTable, WriteOp

        def weakened(self, followup):
            intent = self.intents.get(followup.execution_id)
            yield self.sim.timeout(self.config.server_storage_rtt_ms)
            if intent is not None:
                self.intents.try_complete(followup.execution_id)  # ignored!
            self.store.apply_writes(
                [WriteOp(t, k, v) for (t, k, v) in followup.writes]
            )
            self.idem.claim(followup.execution_id, IdempotencyTable.NEAR_STORAGE)
            if intent is not None:
                self.intents.remove(followup.execution_id)
                self._pending_exec.pop(followup.execution_id, None)
                self._release(followup.execution_id)
            return "applied"

        monkeypatch.setattr(LVIServer, "_handle_followup", weakened)
        record = explore(budget=12, seed=7)
        assert record.violations, "planted bug not found in a smoke budget"
        for v in record.violations:
            assert v["minimal_windows"] <= 2
            assert v["minimal_windows"] <= v["original_windows"]
            # The reproducer row is complete and self-contained.
            restored = plan_from_dict(v["plan"])
            assert plan_hash(restored) == v["hash"]

    def test_explorer_can_write_the_corpus(self, tmp_path, monkeypatch):
        from repro.core.server import LVIServer
        from repro.faults.explorer import explore, load_corpus
        from repro.storage import IdempotencyTable, WriteOp

        def weakened(self, followup):
            intent = self.intents.get(followup.execution_id)
            yield self.sim.timeout(self.config.server_storage_rtt_ms)
            if intent is not None:
                self.intents.try_complete(followup.execution_id)
            self.store.apply_writes(
                [WriteOp(t, k, v) for (t, k, v) in followup.writes]
            )
            self.idem.claim(followup.execution_id, IdempotencyTable.NEAR_STORAGE)
            if intent is not None:
                self.intents.remove(followup.execution_id)
                self._pending_exec.pop(followup.execution_id, None)
                self._release(followup.execution_id)
            return "applied"

        monkeypatch.setattr(LVIServer, "_handle_followup", weakened)
        corpus = tmp_path / "corpus"
        record = explore(budget=12, seed=7, corpus_dir=str(corpus))
        assert record.violations
        entries = load_corpus(str(corpus))
        assert len(entries) == len(record.violations)


class TestCorpus:
    def test_checked_in_corpus_loads_and_replays_green(self):
        from repro.faults.explorer import load_corpus, replay_corpus

        corpus_dir = os.path.join(os.path.dirname(__file__), "..", "corpus")
        entries = load_corpus(corpus_dir)
        assert len(entries) >= 3
        rows = replay_corpus(corpus_dir)
        assert all(r["ok"] for r in rows), [
            r for r in rows if not r["ok"]
        ]

    def test_tampered_entry_fails_integrity_check(self, tmp_path):
        from repro.faults.explorer import (
            CORPUS_SCHEMA,
            load_corpus,
            write_corpus_entry,
        )

        plan = FaultPlan("t", (DropWindow("jp", "va", 0.0, 100.0),))
        entry = {
            "schema": CORPUS_SCHEMA,
            "hash": plan_hash(plan),
            "shape": "seed",
            "seed": 1,
            "plan": plan_to_dict(plan),
        }
        path = write_corpus_entry(str(tmp_path), entry)
        raw = json.load(open(path))
        raw["plan"]["actions"][0]["end_ms"] = 999.0  # hand edit
        with open(path, "w") as fh:
            json.dump(raw, fh)
        with pytest.raises(FaultConfigError, match="hash mismatch"):
            load_corpus(str(tmp_path))


class TestRaftLeaderPlan:
    def test_builtin_passes_across_seeds(self):
        from repro.faults import builtin_plans, run_chaos_case

        plan = builtin_plans()["raft-leader-mid-validate"]
        for seed in range(3):
            result = run_chaos_case(plan, seed, requests_per_client=12)
            assert result.ok, result.violation

    def test_crash_fires_on_the_actual_leader(self):
        # The "raft-leader" target is dynamic: whichever node leads at
        # 700 ms goes down, and the same node is revived at restart.
        from repro.core.config import RadicalConfig
        from repro.topology.deployment import Deployment, TopologySpec

        plan = FaultPlan(
            "t", (CrashWindow("raft-leader", 700.0, 2_000.0),),
            replicated=True,
        )
        spec = TopologySpec(
            regions=("jp", "ca"), config=RadicalConfig(replicated=True),
            fault_plan=plan,
        )
        dep = Deployment.build(spec)
        dep.sim.run(until=650.0)
        leader = dep.raft.leader()
        assert leader is not None
        dep.sim.run(until=900.0)
        assert not leader._alive  # the then-leader went down
        dep.sim.run(until=2_500.0)
        assert leader._alive  # and the same node came back


class TestScenarioIntegration:
    def test_chaos_explore_scenario_smoke(self):
        from repro.scenarios import run_scenario

        payload = run_scenario(
            "chaos_explore", smoke=True, save=False, present=False,
        )
        assert payload["violations"] == []
        assert payload["novel_schedules"] >= 1
        assert payload["schedules_tried"] == 12

    def test_chaos_scenario_accepts_globs_and_files(self, tmp_path):
        from repro.scenarios import parse_scenario

        plan = FaultPlan("extra", (DropWindow("jp", "va", 0.0, 100.0),))
        path = tmp_path / "extra.json"
        path.write_text(json.dumps(plan_to_dict(plan)))
        raw = {
            "scenario": "demo", "kind": "chaos", "artifact": "demo",
            "params": {"plans": ["mesh-*", f"@{path}"]},
        }
        parse_scenario(raw)  # must not raise

    def test_chaos_scenario_rejects_unmatched_glob(self):
        from repro.scenarios import ScenarioError, parse_scenario

        raw = {
            "scenario": "demo", "kind": "chaos", "artifact": "demo",
            "params": {"plans": ["solar-*"]},
        }
        with pytest.raises(ScenarioError, match="no builtin fault plan matches"):
            parse_scenario(raw)
