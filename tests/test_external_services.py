"""Tests for §3.5: external services with at-most-once semantics.

The paper's double-charge scenario: a function calls a payment API; the
same logical request may execute twice (backup execution or deterministic
re-execution), so every call must be idempotency-keyed.
"""

import pytest

from repro.core import (
    ExternalServiceHub,
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    RadicalConfig,
)
from repro.errors import AnalysisError, VMTrap
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache
from repro.wasm import DictEnv, VM, compile_source

PAY_SRC = '''
def checkout(uid, amount):
    account = db_get("accounts", f"acct:{uid}")
    if account is None:
        return {"ok": False}
    busy(3000)
    receipt = external("payments", {"uid": uid, "amount": amount})
    db_put("orders", f"order:{uid}:{receipt["id"]}", {"amount": amount})
    return {"ok": True, "receipt": receipt["id"]}
'''.replace('receipt["id"]', "receipt['id']")


class TestExternalServiceHub:
    def _hub(self):
        hub = ExternalServiceHub()
        charges = []

        def payments(payload):
            charges.append(payload)
            return {"id": f"r-{payload['uid']}-{payload['amount']}", "ok": True}

        hub.register("payments", payments)
        return hub, charges

    def test_first_call_executes(self):
        hub, charges = self._hub()
        response = hub.get("payments").invoke("k1", {"uid": "u", "amount": 5})
        assert response["ok"]
        assert len(charges) == 1

    def test_same_key_dedups(self):
        hub, charges = self._hub()
        svc = hub.get("payments")
        first = svc.invoke("k1", {"uid": "u", "amount": 5})
        second = svc.invoke("k1", {"uid": "u", "amount": 5})
        assert first == second
        assert svc.side_effects == 1
        assert svc.invocations == 2

    def test_different_keys_charge_separately(self):
        hub, charges = self._hub()
        svc = hub.get("payments")
        svc.invoke("k1", {"uid": "u", "amount": 5})
        svc.invoke("k2", {"uid": "u", "amount": 5})
        assert svc.side_effects == 2

    def test_recorded_response_returned_even_for_different_payload(self):
        # Stripe semantics: the key wins, not the payload.
        hub, _charges = self._hub()
        svc = hub.get("payments")
        first = svc.invoke("k1", {"uid": "u", "amount": 5})
        replay = svc.invoke("k1", {"uid": "u", "amount": 999})
        assert replay == first

    def test_duplicate_registration_rejected(self):
        hub, _ = self._hub()
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            hub.register("payments", lambda p: p)

    def test_unknown_service_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            ExternalServiceHub().get("nope")

    def test_caller_derives_key_from_execution_and_seq(self):
        hub, _ = self._hub()
        call_a = hub.caller_for("exec-1")
        call_b = hub.caller_for("exec-1")  # a replay of the same execution
        call_a("payments", {"uid": "u", "amount": 1}, 0)
        call_b("payments", {"uid": "u", "amount": 1}, 0)
        assert hub.get("payments").side_effects == 1
        # A different execution (or call site) is a fresh charge.
        call_c = hub.caller_for("exec-2")
        call_c("payments", {"uid": "u", "amount": 1}, 0)
        assert hub.get("payments").side_effects == 2


class TestVmIntegration:
    def test_external_call_from_sandbox(self):
        hub = ExternalServiceHub()
        hub.register("payments", lambda p: {"id": "r1", "ok": True})
        fn = compile_source(PAY_SRC)
        env = DictEnv({("accounts", "acct:u"): {"balance": 10}})
        vm = VM(env, external=hub.caller_for("e1"))
        trace = vm.execute(fn, ["u", 5])
        assert trace.result["ok"]
        assert trace.external_calls == [("payments", 0)]

    def test_sandbox_without_services_traps(self):
        fn = compile_source('def f():\n    return external("payments", {})')
        with pytest.raises(VMTrap, match="no external services"):
            VM(DictEnv()).execute(fn, [])

    def test_external_arity_enforced(self):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            compile_source('def f():\n    return external("payments")')


class TestAnalysis:
    def test_external_result_feeding_key_is_unanalyzable(self):
        # The order key depends on the receipt: f^rw cannot be derived.
        from repro.analysis import slice_function

        with pytest.raises(AnalysisError, match="external"):
            slice_function(PAY_SRC)

    def test_external_without_key_dependency_slices_away(self):
        src = """
def notify(uid):
    user = db_get("users", f"u:{uid}")
    external("email", {"to": uid})
    return user
"""
        from repro.analysis import slice_function

        result = slice_function(src)
        assert "external" not in result.frw_source  # f^rw is side-effect free

    def test_unanalyzable_checkout_registers_for_direct_execution(self):
        reg = FunctionRegistry()
        record = reg.register(FunctionSpec("shop.checkout", PAY_SRC, 40.0))
        assert not record.analyzable


class TestEndToEndDoubleExecution:
    def _world(self, followup_timeout=400.0):
        sim = Simulator()
        streams = RandomStreams(6)
        net = Network(sim, paper_latency_table(), streams)
        metrics = Metrics()
        config = RadicalConfig(service_jitter_sigma=0.0, followup_timeout_ms=followup_timeout)
        hub = ExternalServiceHub()
        charges = []

        def payments(payload):
            charges.append(payload)
            return {"id": f"r{len(charges)}", "ok": True}

        hub.register("payments", payments)
        registry = FunctionRegistry()
        # An analyzable variant: the order key does not depend on the
        # receipt, so Radical can still speculate.
        src = """
def checkout(uid, amount):
    account = db_get("accounts", f"acct:{uid}")
    if account is None:
        return {"ok": False}
    busy(3000)
    receipt = external("payments", {"uid": uid, "amount": amount})
    db_put("orders", f"order:{uid}", {"amount": amount, "receipt": receipt["id"]})
    return {"ok": True, "receipt": receipt["id"]}
"""
        registry.register(FunctionSpec("shop.checkout", src, 30.0))
        store = KVStore()
        store.put("accounts", "acct:u", {"balance": 100})
        server = LVIServer(sim, net, registry, store, config, streams, metrics,
                           external_hub=hub)
        cache = NearUserCache(Region.CA)
        cache.install("accounts", "acct:u", store.get("accounts", "acct:u"))
        runtime = NearUserRuntime(sim, net, Region.CA, cache, registry, config,
                                  streams, metrics, external_hub=hub)
        return sim, net, store, server, runtime, hub, charges, metrics

    def test_happy_path_charges_once(self):
        sim, _net, store, _server, runtime, hub, charges, _m = self._world()
        outcome = sim.run_process(runtime.invoke("shop.checkout", ["u", 25]))
        sim.run(until=sim.now + 2000)
        assert outcome.result["ok"]
        assert len(charges) == 1
        assert store.get("orders", "order:u").value["receipt"] == outcome.result["receipt"]

    def test_lost_followup_reexecution_does_not_double_charge(self):
        # The §3.5 nightmare: the client was charged, the followup dies,
        # the function re-executes near storage — the idempotency key
        # must absorb the second payment call.
        sim, net, store, _server, runtime, hub, charges, metrics = self._world()
        proc = sim.spawn(runtime.invoke("shop.checkout", ["u", 25]))
        sim.run(until_event=proc.done_event)
        assert proc.result.result["ok"]
        net.partition(Region.CA, Region.VA)
        sim.run(until=sim.now + 3000)
        assert metrics.counter("reexecution.count") == 1
        assert len(charges) == 1  # charged exactly once
        # And the re-executed write recorded the SAME receipt (§3.4
        # determinism: the replay observed the recorded response).
        assert (
            store.get("orders", "order:u").value["receipt"]
            == proc.result.result["receipt"]
        )

    def test_validation_failure_backup_does_not_double_charge(self):
        sim, _net, store, _server, runtime, hub, charges, _m = self._world()
        # Make the cache stale: bump the account at the primary.
        store.put("accounts", "acct:u", {"balance": 50})
        outcome = sim.run_process(runtime.invoke("shop.checkout", ["u", 25]))
        sim.run(until=sim.now + 2000)
        assert outcome.path == "backup"
        assert outcome.result["ok"]
        assert len(charges) == 1  # speculative + backup -> one side effect
