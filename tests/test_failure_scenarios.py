"""Deeper failure-injection scenarios against the full protocol stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_counter_stack as build
from repro.consistency import HistoryRecorder, check_strict_serializability
from repro.sim import Region


class TestFollowupRaces:
    def test_many_lost_followups_all_reexecuted_once(self):
        sim, net, store, server, runtimes, metrics = build()
        rt = runtimes[Region.JP]
        # Five sequential bumps, every followup eaten by the network.
        for i in range(5):
            proc = sim.spawn(rt.invoke("t.bump", ["x"]))
            sim.run(until_event=proc.done_event)
            net.partition(Region.JP, Region.VA)
            sim.run(until=sim.now + 1500.0)
            net.heal(Region.JP, Region.VA)
            # Cache is now stale vs the re-executed write? No: the runtime
            # applied its own write locally with the correct version.
        sim.run(until=sim.now + 3000.0)
        assert store.get("counters", "c:x").value == 5
        assert metrics.counter("reexecution.count") == 5
        assert server.intents.pending() == []

    def test_slow_followup_and_timer_race_is_exactly_once(self):
        # Make the followup arrive in the same window as the intent timer
        # repeatedly; the version count proves single application.
        sim, net, store, server, runtimes, metrics = build(followup_timeout=110.0)
        rt = runtimes[Region.CA]
        net.set_extra_delay(Region.CA, Region.VA, 36.0)  # followup ~ timer
        for _i in range(10):
            proc = sim.spawn(rt.invoke("t.bump", ["x"]))
            sim.run(until_event=proc.done_event)
            sim.run(until=sim.now + 2000.0)
        item = store.get("counters", "c:x")
        assert item.value == 10
        assert item.version == 11  # initial put + exactly 10 increments

    def test_duplicated_everything_still_exactly_once(self):
        sim, net, store, server, runtimes, metrics = build()
        net.set_duplicate_probability(Region.JP, Region.VA, 1.0)
        net.set_duplicate_probability(Region.VA, Region.JP, 1.0)
        rt = runtimes[Region.JP]
        for _i in range(5):
            proc = sim.spawn(rt.invoke("t.bump", ["x"]))
            sim.run(until_event=proc.done_event)
            sim.run(until=sim.now + 2000.0)
        assert store.get("counters", "c:x").value == 5


class TestCrashes:
    def test_runtime_crash_mid_request_recovers_via_intent(self):
        sim, net, store, server, runtimes, metrics = build()
        rt = runtimes[Region.JP]
        proc = sim.spawn(rt.invoke("t.bump", ["x"]))
        # Kill the invocation after the LVI request is en route but before
        # the function "completes" (virtual 40 ms in).
        sim.schedule(40.0, proc.kill)
        sim.run(until=sim.now + 5000.0)
        # The intent timer re-executed: the write still lands exactly once.
        assert store.get("counters", "c:x").value == 1
        assert metrics.counter("reexecution.count") == 1
        assert server.intents.pending() == []

    def test_cache_wipe_mid_workload_stays_consistent(self):
        sim, net, store, server, runtimes, metrics = build()
        history = HistoryRecorder()

        def client(region, n, wipe_at):
            rt = runtimes[region]

            def flow():
                for i in range(n):
                    if i == wipe_at:
                        rt.cache.force_wipe()
                    rec = history.begin("t.bump", sim.now)
                    outcome = yield sim.spawn(rt.invoke("t.bump", ["x"]))
                    history.finish(rec, sim.now, reads=outcome.read_versions,
                                   writes=outcome.write_versions)

            return flow()

        p1 = sim.spawn(client(Region.JP, 6, wipe_at=3))
        p2 = sim.spawn(client(Region.CA, 6, wipe_at=2))
        sim.run(until_event=sim.all_of([p1.done_event, p2.done_event]))
        sim.run(until=sim.now + 5000.0)
        assert store.get("counters", "c:x").value == 12
        check_strict_serializability(history.records())


class TestPropertyExactlyOnce:
    @given(
        drops=st.lists(st.booleans(), min_size=3, max_size=8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_counter_never_loses_or_duplicates(self, drops, seed):
        """Whatever subset of followups the network eats, the counter ends
        exactly at the number of successful bumps."""
        sim, net, store, server, runtimes, metrics = build(seed=seed)
        rt = runtimes[Region.JP]
        for drop in drops:
            proc = sim.spawn(rt.invoke("t.bump", ["x"]))
            sim.run(until_event=proc.done_event)
            if drop:
                net.partition(Region.JP, Region.VA)
            sim.run(until=sim.now + 1200.0)
            net.heal(Region.JP, Region.VA)
        sim.run(until=sim.now + 3000.0)
        assert store.get("counters", "c:x").value == len(drops)
        assert server.intents.pending() == []
