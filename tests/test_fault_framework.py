"""Fault-plan validation, network knob validation, and scheduler replay."""

import math

import pytest

from repro.errors import FaultConfigError, ReproError
from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CrashWindow,
    DelayWindow,
    DropWindow,
    DuplicateWindow,
    FaultPlan,
    FaultScheduler,
    FollowupLossWindow,
    PartitionWindow,
)
from repro.sim import (
    Metrics,
    Network,
    RandomStreams,
    Region,
    Simulator,
    paper_latency_table,
)

from conftest import build_counter_stack


def make_net(seed=1):
    sim = Simulator()
    net = Network(sim, paper_latency_table(), RandomStreams(seed))
    return sim, net


class TestKnobValidation:
    def test_drop_probability_rejects_out_of_range(self):
        _, net = make_net()
        with pytest.raises(FaultConfigError):
            net.set_drop_probability(Region.JP, Region.VA, 1.5)
        with pytest.raises(FaultConfigError):
            net.set_drop_probability(Region.JP, Region.VA, -0.1)

    def test_duplicate_probability_rejects_out_of_range(self):
        _, net = make_net()
        with pytest.raises(FaultConfigError):
            net.set_duplicate_probability(Region.JP, Region.VA, 2.0)

    def test_extra_delay_rejects_negative(self):
        _, net = make_net()
        with pytest.raises(FaultConfigError):
            net.set_extra_delay(Region.JP, Region.VA, -5.0)

    def test_fault_config_error_is_both_repro_and_value_error(self):
        # Callers that predate the fault framework catch ValueError.
        assert issubclass(FaultConfigError, ReproError)
        assert issubclass(FaultConfigError, ValueError)


class TestPlanValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(FaultConfigError):
            PartitionWindow(Region.JP, Region.VA, start_ms=100.0, end_ms=100.0).validate()

    def test_negative_start_rejected(self):
        with pytest.raises(FaultConfigError):
            DropWindow(Region.JP, Region.VA, start_ms=-1.0).validate()

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultConfigError):
            DropWindow(Region.JP, Region.VA, start_ms=0.0, probability=1.01).validate()
        with pytest.raises(FaultConfigError):
            DuplicateWindow(Region.JP, Region.VA, start_ms=0.0, probability=-0.5).validate()

    def test_negative_extra_delay_rejected(self):
        with pytest.raises(FaultConfigError):
            DelayWindow(Region.JP, Region.VA, start_ms=0.0, extra_ms=-10.0).validate()

    def test_restart_before_crash_rejected(self):
        with pytest.raises(FaultConfigError):
            CrashWindow("lvi-server", crash_at_ms=500.0, restart_at_ms=400.0).validate()

    def test_nameless_plan_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(name="").validate()

    def test_plan_validate_recurses_into_actions(self):
        plan = FaultPlan(
            name="bad",
            actions=(DropWindow(Region.JP, Region.VA, start_ms=0.0, probability=7.0),),
        )
        with pytest.raises(FaultConfigError):
            plan.validate()

    def test_horizon_ignores_open_windows(self):
        plan = FaultPlan(
            name="mixed",
            actions=(
                DropWindow(Region.JP, Region.VA, start_ms=100.0, end_ms=math.inf),
                PartitionWindow(Region.CA, Region.VA, start_ms=200.0, end_ms=900.0),
                CrashWindow("lvi-server", crash_at_ms=300.0, restart_at_ms=650.0),
            ),
        )
        assert plan.horizon_ms() == 900.0
        assert plan.crash_targets() == ("lvi-server",)


class TestScheduler:
    def test_unbound_crash_target_rejected_up_front(self):
        sim, net = make_net()
        plan = FaultPlan(
            name="crashy", actions=(CrashWindow("nope", crash_at_ms=10.0),)
        )
        with pytest.raises(FaultConfigError, match="nope"):
            FaultScheduler(sim, net, plan)

    def test_start_is_once_only(self):
        sim, net = make_net()
        sched = FaultScheduler(sim, net, FaultPlan(name="empty"))
        sched.start()
        with pytest.raises(FaultConfigError):
            sched.start()

    def test_windows_flip_knobs_at_exact_virtual_times(self):
        sim, net = make_net()
        plan = FaultPlan(
            name="pulse",
            actions=(
                DropWindow(Region.JP, Region.VA, start_ms=100.0, end_ms=300.0,
                           probability=0.5),
                DelayWindow(Region.CA, Region.VA, start_ms=150.0, extra_ms=40.0,
                            end_ms=250.0),
            ),
        )
        metrics = Metrics()
        sched = FaultScheduler(sim, net, plan, metrics=metrics)
        sched.start()
        sim.run(until=1000.0)
        times_events = [(t, e) for t, e, _ in sched.injected]
        assert times_events == [
            (100.0, "drop"),
            (150.0, "delay"),
            (250.0, "delay"),
            (300.0, "drop"),
        ]
        assert metrics.counter("fault.injected") == 4

    def test_same_plan_same_seed_identical_injection_log(self):
        def run_once():
            sim, net = make_net(seed=7)
            plan = FaultPlan(
                name="flaky",
                actions=(
                    DropWindow(Region.JP, Region.VA, start_ms=50.0, end_ms=400.0,
                               probability=0.25, bidirectional=True),
                    FollowupLossWindow(start_ms=100.0, end_ms=600.0),
                ),
            )
            sched = FaultScheduler(sim, net, plan)
            sched.start()
            sim.run(until=1000.0)
            return sched.injected

        assert run_once() == run_once()

    def test_followup_loss_window_forces_reexecution(self):
        sim, net, store, server, runtimes, metrics = build_counter_stack()
        plan = FaultPlan(
            name="eat-followups",
            actions=(FollowupLossWindow(start_ms=0.0, end_ms=2000.0),),
        )
        FaultScheduler(sim, net, plan, metrics=metrics).start()
        rt = runtimes[Region.JP]
        proc = sim.spawn(rt.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        sim.run(until=sim.now + 4000.0)
        assert store.get("counters", "c:x").value == 1
        assert metrics.counter("reexecution.count") == 1
        assert server.intents.pending() == []

    def test_scheduled_crash_and_restart_recovers_server(self):
        sim, net, store, server, runtimes, metrics = build_counter_stack()
        plan = FaultPlan(
            name="bounce",
            actions=(CrashWindow("lvi-server", crash_at_ms=120.0,
                                 restart_at_ms=900.0),),
        )
        FaultScheduler(sim, net, plan, targets={"lvi-server": server},
                       metrics=metrics).start()
        rt = runtimes[Region.JP]
        proc = sim.spawn(rt.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        sim.run(until=sim.now + 8000.0)
        assert metrics.counter("server.crashes") == 1
        assert metrics.counter("server.restarts") == 1
        assert server.intents.pending() == []
        # The write either landed exactly once or was never acked; no dup.
        assert store.get("counters", "c:x").value in (0, 1)


class TestRetryEdges:
    """Boundary conditions of the retry/backoff/breaker machinery, pinned
    at exact virtual times."""

    def test_deadline_expiring_exactly_at_retry_boundary(self):
        # Timeline with 100 ms attempts and flat 50 ms backoffs against a
        # blackholed link: attempt [0,100), backoff [100,150), attempt
        # [150,250), backoff [250,300) — the second backoff ends at the
        # deadline to the tick, so the loop re-enters with remaining ==
        # 0.0 exactly and must take the deadline branch, not a third try.
        from types import SimpleNamespace

        from repro.core.config import RadicalConfig
        from repro.errors import UnavailableError

        cfg = RadicalConfig(
            rpc_timeout_ms=100.0,
            retry_max_attempts=10,
            retry_base_backoff_ms=50.0,
            retry_backoff_multiplier=1.0,
            retry_max_backoff_ms=50.0,
            retry_jitter_frac=0.0,
        )
        sim, net, store, server, runtimes, metrics = build_counter_stack(
            config=cfg
        )
        net.set_drop_probability(Region.JP, Region.VA, 1.0)
        rt = runtimes[Region.JP]
        outcome = {}

        def driver():
            try:
                yield from rt._call_with_retry(
                    SimpleNamespace(execution_id="edge"),
                    deadline_at=300.0, label="test",
                )
            except UnavailableError as exc:
                outcome["error"] = str(exc)
                outcome["at"] = sim.now

        sim.run_process(driver())
        assert "deadline exhausted" in outcome["error"]
        assert outcome["at"] == 300.0
        assert metrics.counter("rpc.timeout") == 2
        assert metrics.counter("rpc.retry") == 2
        assert metrics.counter("rpc.deadline_exceeded") == 1
        # Both timeouts and the deadline hit fed the breaker.
        assert rt._breaker.failures == 3

    def test_overload_retry_after_zero_retries_immediately(self):
        # retry_after_ms == 0 is the server saying "again, now": with a
        # zero-backoff policy the retry must happen at the same virtual
        # instant — no sleep, no hang, no failure.
        from types import SimpleNamespace

        from repro.core.config import RadicalConfig
        from repro.errors import OverloadedError

        cfg = RadicalConfig(
            retry_max_attempts=3,
            retry_base_backoff_ms=0.0,
            retry_jitter_frac=0.0,
        )
        sim, net, store, server, runtimes, metrics = build_counter_stack(
            config=cfg
        )
        rt = runtimes[Region.JP]
        calls = []

        def shed_once_call(src, dst, req, timeout=None):
            if False:
                yield  # generator protocol, like Network.call
            calls.append(sim.now)
            if len(calls) == 1:
                raise OverloadedError("lvi-server", retry_after_ms=0.0)
            return "ok"

        rt.net = SimpleNamespace(call=shed_once_call)

        def driver():
            outcome["result"] = yield from rt._call_with_retry(
                SimpleNamespace(execution_id="edge"),
                deadline_at=1_000.0, label="test",
            )

        outcome = {}
        sim.run_process(driver())
        assert outcome["result"] == "ok"
        assert calls == [0.0, 0.0]  # second attempt at the same instant
        assert metrics.counter("rpc.overloaded") == 1
        assert metrics.counter("rpc.retry") == 1
        assert rt._breaker.state == CLOSED  # success re-closed it

    def test_breaker_recloses_after_recovery(self):
        # Trip -> cooldown -> probe succeeds -> CLOSED with the failure
        # count fully reset (one later failure must not re-trip).
        from repro.faults import CircuitBreaker
        from repro.sim import Metrics, Simulator

        sim = Simulator()
        breaker = CircuitBreaker(
            sim, failure_threshold=2, cooldown_ms=100.0, metrics=Metrics()
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert sim.now == 100.0
        assert breaker.allow()  # the cooldown elapsed: one probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0
        breaker.record_failure()  # a single post-recovery blip
        assert breaker.state == CLOSED  # threshold is 2; no re-trip
