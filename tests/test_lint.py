"""Determinism lint: the mechanical ban on wall clocks and ambient RNG."""

from repro.analysis.lint import (
    DETERMINISTIC_PACKAGES,
    lint_source,
    lint_tree,
    repo_root,
)


def _codes(source):
    return [v.code for v in lint_source(source)]


class TestLintRules:
    def test_wall_clock_time(self):
        assert _codes("import time\nt = time.time()\n") == ["DET001"]
        assert _codes("import time\nt = time.monotonic_ns()\n") == ["DET001"]

    def test_wall_clock_datetime(self):
        assert _codes(
            "import datetime\nd = datetime.datetime.now()\n") == ["DET002"]
        assert _codes(
            "from datetime import datetime\nd = datetime.utcnow()\n"
        ) == ["DET002"]

    def test_module_level_random(self):
        assert _codes("import random\nx = random.random()\n") == ["DET003"]
        assert _codes("import random\nx = random.shuffle(items)\n") == ["DET003"]
        assert _codes("import random\nx = random.SystemRandom()\n") == ["DET003"]

    def test_seeded_instance_is_legal(self):
        assert _codes("import random\nrng = random.Random(42)\n") == []
        assert _codes(
            "import random\nrng = random.Random(1)\nx = rng.random()\n") == []

    def test_local_attributes_do_not_false_positive(self):
        # `self.random`, `time` as a variable, strings, comments.
        clean = (
            "class A:\n"
            "    def f(self):\n"
            "        return self.random.choice([1])\n"
            "time = 5  # a local named time\n"
            "s = 'time.time() in a string'\n"
        )
        assert _codes(clean) == []

    def test_unparseable_module_is_reported(self):
        assert _codes("def f(:\n") == ["DET000"]


class TestLintScope:
    def test_simulation_core_is_clean(self):
        assert lint_tree(repo_root()) == []

    def test_scope_names_real_packages(self):
        import os

        for package in DETERMINISTIC_PACKAGES:
            assert os.path.isdir(os.path.join(repo_root(), package))


class TestLintCli:
    def test_subcommand_clean_run(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "determinism lint clean" in capsys.readouterr().out

    def test_subcommand_flags_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out
