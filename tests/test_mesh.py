"""The PoP cache mesh: gossip, sessions, migration, crash recovery.

Covers the mesh's core claims end to end on real deployments (gossip
propagates writes, a crashed PoP re-bootstraps under a fresh epoch, a
migrating session never loses its guarantees) and unit-level (causal
buffering of out-of-order digests, the 1-PoP mesh being virtual-time
identical to the seed path), plus the satellite pieces that ride along:
the ``cache.hit_age_ms`` metric, fault-plan overlap validation, and the
mesh chaos plans.
"""

import pytest

from repro.consistency import find_causal_cut_violations
from repro.errors import FaultConfigError
from repro.faults import (
    CrashWindow,
    FaultPlan,
    MigrationWindow,
    PartitionWindow,
    PoPCrashWindow,
    PoPPartitionWindow,
    SlowServerWindow,
)
from repro.mesh import CacheMesh, GossipDigest, MeshSpec, MeshUpdate, Session
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import NearUserCache
from repro.storage.kvstore import Item

from conftest import build_counter_deployment

KEY = ("counters", "c:x")


def build_mesh_deployment(regions=(Region.JP, Region.CA), gossip_ms=50.0,
                          seed=1, **mesh_kwargs):
    return build_counter_deployment(
        seed=seed, regions=regions,
        mesh=MeshSpec(gossip_interval_ms=gossip_ms, **mesh_kwargs),
    )


def invoke(dep, region, fn, args, session=None):
    gen = dep.runtimes[region].invoke(fn, args, session=session)
    return dep.sim.run_process(gen)


def attach(dep, region, session):
    return dep.sim.run_process(dep.runtimes[region].attach(session))


class TestGossip:
    def test_write_propagates_to_peer_pop(self):
        dep = build_mesh_deployment()
        jp, ca = dep.mesh.pop(Region.JP), dep.mesh.pop(Region.CA)
        warm = ca.version(*KEY)
        invoke(dep, Region.JP, "t.bump", ["x"])
        dep.sim.run(until=dep.sim.now + 2_000.0)
        assert jp.version(*KEY) > warm
        assert ca.version(*KEY) == jp.version(*KEY)
        assert ca.lookup(*KEY).value == jp.lookup(*KEY).value
        assert dep.metrics.counter("mesh.updates_applied") > 0

    def test_one_pop_mesh_is_virtual_time_identical_to_seed(self):
        def run(mesh):
            dep = build_counter_deployment(seed=7, regions=(Region.JP,), mesh=mesh)
            for _ in range(4):
                invoke(dep, Region.JP, "t.bump", ["x"])
            dep.sim.run(until=dep.sim.now + 1_000.0)
            return dep

        seed_dep, mesh_dep = run(None), run(MeshSpec(gossip_interval_ms=50.0))
        assert mesh_dep.sim.now == seed_dep.sim.now
        assert mesh_dep.metrics.samples("e2e") == seed_dep.metrics.samples("e2e")
        assert mesh_dep.metrics.counter("mesh.gossip_sent") == 0
        assert mesh_dep.store.get(*KEY).version == seed_dep.store.get(*KEY).version

    def test_out_of_order_digest_is_buffered_until_causal(self):
        sim = Simulator()
        net = Network(sim, paper_latency_table(), RandomStreams(1))
        mesh = CacheMesh(sim, net, MeshSpec(), [Region.JP, Region.CA], Metrics())
        jp = mesh.make_pop(Region.JP)
        mesh.make_pop(Region.CA)
        mesh.start()

        u1 = MeshUpdate("ca#0", 1, "counters", "c:x", 1, 2, deps=())
        u2 = MeshUpdate("ca#0", 2, "counters", "c:x", 2, 3, deps=(("ca#0", 1),))
        jp.receive_digest(GossipDigest(Region.CA, (("ca#0", 2),), (u2,)))
        assert jp.vv.get("ca#0", 0) == 0          # not applied out of order
        assert len(jp.buffered) == 1
        assert jp.version(*KEY) < 2               # cache untouched
        jp.receive_digest(GossipDigest(Region.CA, (("ca#0", 2),), (u1,)))
        assert jp.vv["ca#0"] == 2                 # buffer drained in order
        assert jp.buffered == []
        assert jp.version(*KEY) == 3
        assert find_causal_cut_violations(jp.applied_log) == []

    def test_cross_origin_dependency_holds_update_back(self):
        sim = Simulator()
        net = Network(sim, paper_latency_table(), RandomStreams(1))
        mesh = CacheMesh(sim, net, MeshSpec(), [Region.JP, Region.CA], Metrics())
        jp = mesh.make_pop(Region.JP)
        mesh.make_pop(Region.CA)
        mesh.start()

        # ie's update depends on ca#0:1, which jp has not applied.
        u = MeshUpdate("ie#0", 1, "counters", "c:x", 9, 5, deps=(("ca#0", 1),))
        jp.receive_digest(GossipDigest("ie", (("ie#0", 1),), (u,)))
        assert jp.vv.get("ie#0", 0) == 0 and len(jp.buffered) == 1
        jp.receive_digest(
            GossipDigest(
                Region.CA, (("ca#0", 1),),
                (MeshUpdate("ca#0", 1, "counters", "c:x", 1, 2, deps=()),),
            )
        )
        assert jp.vv.get("ie#0", 0) == 1          # dependency satisfied -> applied
        assert find_causal_cut_violations(jp.applied_log) == []


class TestCrashRestart:
    def test_crashed_pop_rebootstraps_with_fresh_epoch(self):
        dep = build_mesh_deployment()
        jp, ca = dep.mesh.pop(Region.JP), dep.mesh.pop(Region.CA)
        invoke(dep, Region.JP, "t.bump", ["x"])
        dep.sim.run(until=dep.sim.now + 1_000.0)
        assert ca.version(*KEY) == jp.version(*KEY)

        ca.crash()
        assert not ca.serving
        assert ca.version(*KEY) < 0               # cache wiped
        invoke(dep, Region.JP, "t.bump", ["x"])   # written while ca is down
        ca.restart()
        assert ca.epoch == 1 and ca.origin == "ca#1"
        dep.sim.run(until=dep.sim.now + 2_000.0)

        # Peers saw the zeroed vector and re-sent everything they held.
        assert ca.version(*KEY) == jp.version(*KEY)
        for pop in (jp, ca):
            for label, log in pop.application_logs():
                assert find_causal_cut_violations(log, label=label) == []

    def test_downed_pop_refuses_invocations(self):
        from repro.errors import UnavailableError
        from repro.sim.core import SimulationError

        dep = build_mesh_deployment()
        dep.mesh.pop(Region.JP).crash()
        with pytest.raises(SimulationError) as exc:
            invoke(dep, Region.JP, "t.read", ["x"])
        assert isinstance(exc.value.__cause__, UnavailableError)
        assert dep.metrics.counter("mesh.pop_down") == 1


class TestSessionMigration:
    def test_reattach_pulls_cut_from_peer(self):
        # Gossip effectively off: the cut fetch at attach time is the only
        # way the new PoP can reach the session's floor.
        dep = build_mesh_deployment(gossip_ms=600_000.0)
        session = Session("client-1")
        attach(dep, Region.JP, session)
        invoke(dep, Region.JP, "t.bump", ["x"], session=session)
        dep.sim.run(until=dep.sim.now + 1_000.0)
        ca = dep.mesh.pop(Region.CA)
        assert ca.version(*KEY) < session.floor(KEY)  # stale before attach

        attach(dep, Region.CA, session)
        assert session.migrations == 1
        assert dep.metrics.counter("mesh.cut_fetched") >= 1
        assert ca.version(*KEY) >= session.floor(KEY)
        outcome = invoke(dep, Region.CA, "t.read", ["x"], session=session)
        assert outcome.read_versions[KEY] >= session.floor(KEY)

    def test_unsatisfied_floor_forces_full_lvi_path(self):
        dep = build_mesh_deployment(gossip_ms=600_000.0)
        session = Session("client-1")
        attach(dep, Region.JP, session)
        invoke(dep, Region.JP, "t.bump", ["x"], session=session)
        dep.sim.run(until=dep.sim.now + 1_000.0)

        # Cut the inter-PoP link: the re-attach cut fetch times out, so the
        # stale cache entry survives — floor enforcement must turn it into
        # a miss rather than let the session speculate on it.
        dep.net.partition(Region.JP, Region.CA)
        attach(dep, Region.CA, session)
        assert dep.metrics.counter("mesh.cut_unsatisfied") >= 1
        outcome = invoke(dep, Region.CA, "t.read", ["x"], session=session)
        assert dep.metrics.counter("mesh.session_stale") >= 1
        # The full path still returns a floor-satisfying (fresh) read.
        assert outcome.read_versions[KEY] >= session.floor(KEY)

    def test_session_observes_acked_versions(self):
        dep = build_mesh_deployment()
        session = Session("client-1")
        attach(dep, Region.JP, session)
        outcome = invoke(dep, Region.JP, "t.bump", ["x"], session=session)
        assert session.floor(KEY) == outcome.write_versions[KEY]
        assert session.region == Region.JP


class TestHitAgeMetric:
    def test_hit_age_measured_from_install_time(self):
        sim = Simulator()
        metrics = Metrics()
        cache = NearUserCache(Region.JP)
        cache.bind(sim, metrics)
        cache.install("t", "k", Item(value="v", version=1))
        sim.schedule(250.0, lambda: None)
        sim.run()
        assert cache.lookup("t", "k").value == "v"
        samples = metrics.samples_tagged("cache.hit_age_ms", region=Region.JP)
        assert samples == [250.0]

    def test_disabled_metrics_record_nothing(self):
        sim = Simulator()
        metrics = Metrics()
        metrics.enabled = False
        cache = NearUserCache(Region.JP)
        cache.bind(sim, metrics)
        cache.install("t", "k", Item(value="v", version=1))
        cache.lookup("t", "k")
        metrics.enabled = True
        assert metrics.samples_tagged("cache.hit_age_ms") == []

    def test_deployment_records_hit_ages(self):
        dep = build_counter_deployment()
        invoke(dep, Region.JP, "t.read", ["x"])
        assert dep.metrics.samples_tagged("cache.hit_age_ms", region=Region.JP)


class TestPlanOverlapValidation:
    def test_overlapping_crash_windows_on_same_target_rejected(self):
        plan = FaultPlan("p", (
            CrashWindow("lvi-server", 100.0, 900.0),
            CrashWindow("lvi-server", 500.0, 1_200.0),
        ))
        with pytest.raises(FaultConfigError, match="conflicting windows"):
            plan.validate()

    def test_crash_and_limp_on_same_target_rejected(self):
        plan = FaultPlan("p", (
            CrashWindow("lvi-server", 100.0, 900.0),
            SlowServerWindow("lvi-server", 400.0, 1_500.0, proc_ms=50.0),
        ))
        with pytest.raises(FaultConfigError, match="conflicting windows"):
            plan.validate()

    def test_pop_partition_conflicts_with_partition_on_same_link(self):
        plan = FaultPlan("p", (
            PartitionWindow(Region.JP, Region.VA, 100.0, 2_000.0),
            PoPPartitionWindow(Region.JP, 500.0, 1_500.0, peers=(), wan=True),
        ))
        with pytest.raises(FaultConfigError, match="conflicting windows"):
            plan.validate()

    def test_error_names_both_windows(self):
        plan = FaultPlan("p", (
            CrashWindow("lvi-server", 100.0, 900.0),
            CrashWindow("lvi-server", 500.0, 1_200.0),
        ))
        with pytest.raises(FaultConfigError) as exc:
            plan.validate()
        message = str(exc.value)
        assert "lvi-server" in message and "overlaps" in message
        assert "100.0" in message and "500.0" in message  # both windows named

    def test_disjoint_windows_on_same_target_pass(self):
        FaultPlan("p", (
            CrashWindow("lvi-server", 100.0, 900.0),
            CrashWindow("lvi-server", 1_000.0, 2_000.0),
        )).validate()

    def test_same_link_different_knobs_pass(self):
        FaultPlan("p", (
            PartitionWindow(Region.JP, Region.VA, 100.0, 2_000.0),
            SlowServerWindow("lvi-server", 100.0, 2_000.0, proc_ms=50.0),
        )).validate()

    def test_same_instant_migrations_of_same_client_rejected(self):
        plan = FaultPlan("p", (
            MigrationWindow("jp-0", Region.CA, 500.0),
            MigrationWindow("jp-0", Region.IE, 500.0),
        ))
        with pytest.raises(FaultConfigError, match="conflicting windows"):
            plan.validate()

    def test_distinct_migrations_pass(self):
        FaultPlan("p", (
            MigrationWindow("jp-0", Region.CA, 500.0),
            MigrationWindow("jp-0", Region.IE, 900.0),
            MigrationWindow("ca-0", Region.IE, 500.0),
        )).validate()

    def test_open_ended_overlap_detected(self):
        plan = FaultPlan("p", (
            PoPCrashWindow(Region.JP, 100.0),  # never restarts
            PoPCrashWindow(Region.JP, 5_000.0, 6_000.0),
        ))
        with pytest.raises(FaultConfigError, match="conflicting windows"):
            plan.validate()

    def test_existing_builtin_plans_still_validate(self):
        from repro.faults import builtin_plans

        for plan in builtin_plans().values():
            plan.validate()


class TestMeshSpecValidation:
    def test_bad_interval_rejected(self):
        with pytest.raises(FaultConfigError):
            MeshSpec(gossip_interval_ms=0.0).validate()

    def test_bad_digest_cap_rejected(self):
        with pytest.raises(FaultConfigError):
            MeshSpec(max_updates_per_digest=0).validate()

    def test_topology_spec_validates_mesh(self):
        from repro.topology import TopologySpec

        with pytest.raises(FaultConfigError):
            TopologySpec(mesh=MeshSpec(gossip_interval_ms=-1.0)).validate()

    def test_pop_crash_without_mesh_rejected_at_build(self):
        # A PoPCrashWindow needs a mesh PoP to crash; without one the
        # fault scheduler must refuse the plan instead of silently no-oping.
        plan = FaultPlan("p", (PoPCrashWindow(Region.JP, 100.0, 900.0),))
        with pytest.raises(FaultConfigError):
            build_counter_deployment(fault_plan=plan, mesh=None)


class TestMeshChaosPlans:
    def test_mesh_pop_crash_case_passes_with_failover(self):
        from repro.faults import builtin_plans, run_chaos_case

        result = run_chaos_case(
            builtin_plans()["mesh-pop-crash"], seed=0, requests_per_client=8,
        )
        assert result.ok
        assert result.session_ok
        assert result.migrations >= 1          # jp's client failed over
        assert result.counters.get("mesh.updates_applied", 0) > 0

    def test_mesh_migration_storm_keeps_sessions_clean(self):
        from repro.faults import builtin_plans, run_chaos_case

        result = run_chaos_case(
            builtin_plans()["mesh-migration-storm"], seed=1,
            requests_per_client=12,
        )
        assert result.ok
        assert result.migrations >= 3
        assert result.ryw_violations == 0
        assert result.mr_violations == 0
        assert result.causal_violations == 0

    def test_migration_to_unknown_region_rejected(self):
        from repro.faults import run_chaos_case

        plan = FaultPlan(
            "bad-migration",
            (MigrationWindow("jp-0", Region.DE, 500.0),),
            mesh=True,
        )
        with pytest.raises(FaultConfigError, match="no runtime"):
            run_chaos_case(plan, seed=0, requests_per_client=2)
