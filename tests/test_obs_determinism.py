"""Tracing must not perturb determinism (the tentpole's hard contract).

Two regressions are pinned here:

* the same seed run twice *with* tracing produces byte-identical span
  streams (hashed via the canonical JSONL serialization) and identical
  latency summaries;
* the same seed run *without* tracing produces exactly the same
  ExperimentResult summaries as the traced run — the collector never
  draws randomness, never schedules events, and never changes event
  order.
"""

import pytest

from repro.bench import ExperimentConfig, run_radical_experiment
from repro.bench.experiments import MAIN_APP_BUILDERS
from repro.obs import orphan_spans, trace_digest
from repro.sim import Region

REQUESTS = 200
SEED = 1234


def run(trace, seed=SEED, app="social"):
    cfg = ExperimentConfig(requests=REQUESTS, seed=seed, trace=trace)
    return run_radical_experiment(MAIN_APP_BUILDERS[app](), cfg)


@pytest.fixture(scope="module")
def traced():
    return run(trace=True)


@pytest.fixture(scope="module")
def traced_again():
    return run(trace=True)


@pytest.fixture(scope="module")
def untraced():
    return run(trace=False)


class TestTracedRunsAreReproducible:
    def test_span_streams_byte_identical(self, traced, traced_again):
        assert trace_digest(traced.trace.spans) == trace_digest(traced_again.trace.spans)

    def test_span_counts_match(self, traced, traced_again):
        assert len(traced.trace.spans) == len(traced_again.trace.spans)
        assert orphan_spans(traced.trace.spans) == []

    def test_summaries_identical(self, traced, traced_again):
        assert traced.summary() == traced_again.summary()
        assert traced.virtual_time_ms == traced_again.virtual_time_ms

    def test_event_timestamps_identical(self, traced, traced_again):
        firsts = [(s.name, s.start_ms, s.end_ms) for s in traced.trace.spans]
        seconds = [(s.name, s.start_ms, s.end_ms) for s in traced_again.trace.spans]
        assert firsts == seconds


class TestTracingIsObservationallyFree:
    def test_overall_summary_identical(self, traced, untraced):
        assert traced.summary() == untraced.summary()

    def test_per_region_summaries_identical(self, traced, untraced):
        for region in Region.NEAR_USER:
            assert traced.region_summary(region) == untraced.region_summary(region)

    def test_counters_identical(self, traced, untraced):
        assert traced.metrics.counters() == untraced.metrics.counters()

    def test_virtual_time_identical(self, traced, untraced):
        assert traced.virtual_time_ms == untraced.virtual_time_ms

    def test_raw_samples_identical(self, traced, untraced):
        assert traced.metrics.samples("e2e") == untraced.metrics.samples("e2e")

    def test_untraced_result_has_no_collector(self, untraced):
        assert untraced.trace is None
        with pytest.raises(ValueError):
            untraced.breakdowns()


class TestSeedsDiffer:
    def test_different_seed_changes_the_trace(self, traced):
        other = run(trace=True, seed=SEED + 1)
        assert trace_digest(other.trace.spans) != trace_digest(traced.trace.spans)
