"""Span accounting under network failure injection (satellite of the
tracing spine): every ``net.hop`` span must be closed exactly once —
delivered or dropped — under drop probability, duplication, partitions,
and crashed endpoints.  An orphan span means a code path lost track of a
message copy."""

from repro.obs import TraceCollector, orphan_spans
from repro.sim import (
    Network,
    RandomStreams,
    Region,
    RpcTimeout,
    Simulator,
    paper_latency_table,
)


def build():
    sim = Simulator()
    sim.obs = TraceCollector(sim)
    net = Network(sim, paper_latency_table(), RandomStreams(7))
    return sim, net


def _call_catching(net, payload, timeout):
    """A client process that absorbs the expected RPC timeout (an
    unobserved process exception would crash the simulation loop)."""
    try:
        response = yield from net.call("client", "server", payload, timeout=timeout)
        return response
    except RpcTimeout:
        return "timeout"


def hop_spans(obs):
    return [s for s in obs.spans if s.name == "net.hop"]


def by_status(spans):
    out = {}
    for s in spans:
        out[s.attrs.get("status")] = out.get(s.attrs.get("status"), 0) + 1
    return out


def assert_balanced_hops(sim, net):
    """The invariant all tests share: no orphans, and exactly one hop span
    per physical message copy (sends + replies + injected duplicates)."""
    assert orphan_spans(sim.obs.spans) == []
    hops = hop_spans(sim.obs)
    duplicates = sum(1 for s in hops if s.attrs.get("duplicate"))
    assert len(hops) == net.messages_sent + duplicates
    statuses = by_status(hops)
    assert statuses.get("dropped", 0) + statuses.get("delivered", 0) == len(hops)
    return statuses


class TestDrops:
    def test_total_loss_closes_every_span_as_dropped(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        net.set_drop_probability(Region.CA, Region.VA, 1.0)
        for _ in range(20):
            net.send("a", "b", "ping")
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        assert statuses == {"dropped": 20}

    def test_partial_loss_partitions_spans_between_statuses(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        net.set_drop_probability(Region.CA, Region.VA, 0.5)
        for _ in range(60):
            net.send("a", "b", "ping")
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        assert statuses.get("dropped", 0) > 0
        assert statuses.get("delivered", 0) > 0
        assert net.messages_dropped == statuses["dropped"]

    def test_send_to_unregistered_endpoint_is_dropped(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.send("a", "ghost", "ping")
        sim.run()
        assert assert_balanced_hops(sim, net) == {"dropped": 1}

    def test_endpoint_crash_mid_flight_drops_at_delivery(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        net.send("a", "b", "ping")
        net.unregister("b")  # crashes while the message is on the wire
        sim.run()
        assert assert_balanced_hops(sim, net) == {"dropped": 1}


class TestDuplicates:
    def test_duplicate_copies_get_their_own_spans(self):
        sim, net = build()
        net.register("a", Region.CA)
        seen = []
        net.register_handler("b", Region.VA, lambda payload, src: seen.append(payload))
        net.set_duplicate_probability(Region.CA, Region.VA, 1.0)
        for i in range(10):
            net.send("a", "b", i)
        sim.run()
        assert len(seen) == 20  # every message delivered twice
        statuses = assert_balanced_hops(sim, net)
        assert statuses == {"delivered": 20}
        dups = [s for s in hop_spans(sim.obs) if s.attrs.get("duplicate")]
        assert len(dups) == 10

    def test_duplicate_copy_to_crashed_endpoint_still_closes(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        net.set_duplicate_probability(Region.CA, Region.VA, 1.0)
        net.send("a", "b", "ping")

        # Crash the destination between the two deliveries (the duplicate
        # trails the original by 0.1 ms).
        one_way = paper_latency_table().one_way(Region.CA, Region.VA)
        sim.schedule(one_way + 0.05, net.unregister, "b")
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        assert statuses == {"delivered": 1, "dropped": 1}


class TestPartitions:
    def test_partition_drops_and_heal_restores(self):
        sim, net = build()
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        net.partition(Region.CA, Region.VA)
        net.send("a", "b", "lost")
        sim.run()
        net.heal(Region.CA, Region.VA)
        net.send("a", "b", "found")
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        assert statuses == {"dropped": 1, "delivered": 1}

    def test_rpc_through_partition_times_out_with_closed_spans(self):
        sim, net = build()

        def echo(payload, src):
            return payload
            yield  # pragma: no cover - makes this a generator handler

        net.register("client", Region.CA)
        net.serve("server", Region.VA, echo)
        net.partition(Region.CA, Region.VA)

        assert sim.run_process(_call_catching(net, "hello", 500.0)) == "timeout"
        sim.run()
        assert orphan_spans(sim.obs.spans) == []
        rpcs = [s for s in sim.obs.spans if s.name == "rpc"]
        assert len(rpcs) == 1
        assert rpcs[0].attrs["status"] == "timeout"
        assert by_status(hop_spans(sim.obs)) == {"dropped": 1}

    def test_rpc_after_heal_succeeds_and_balances(self):
        sim, net = build()

        def echo(payload, src):
            return payload
            yield  # pragma: no cover

        net.register("client", Region.CA)
        net.serve("server", Region.VA, echo)
        net.partition(Region.CA, Region.VA)
        assert sim.run_process(_call_catching(net, "one", 500.0)) == "timeout"
        net.heal(Region.CA, Region.VA)
        assert sim.run_process(_call_catching(net, "two", 5000.0)) == "two"
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        # One dropped request during the partition; the healed exchange
        # delivers a request and a reply.
        assert statuses == {"dropped": 1, "delivered": 2}
        rpcs = [s for s in sim.obs.spans if s.name == "rpc"]
        assert [s.attrs["status"] for s in rpcs] == ["timeout", "ok"]

    def test_reply_lost_to_partition_closes_reply_span(self):
        sim, net = build()

        def echo(payload, src):
            return payload
            yield  # pragma: no cover

        net.register("client", Region.CA)
        net.serve("server", Region.VA, echo)
        # Only the return direction is partitioned: the request lands, the
        # reply is eaten.
        net.partition(Region.VA, Region.CA, bidirectional=False)
        assert sim.run_process(_call_catching(net, "hello", 2000.0)) == "timeout"
        sim.run()
        statuses = assert_balanced_hops(sim, net)
        assert statuses == {"delivered": 1, "dropped": 1}
        reply_spans = [s for s in hop_spans(sim.obs) if s.attrs.get("reply")]
        assert len(reply_spans) == 1
        assert reply_spans[0].attrs["status"] == "dropped"


class TestProtocolUnderFaults:
    """End-to-end: the LVI protocol keeps its span accounting balanced
    when the WAN misbehaves (requests retried after timeouts, duplicated
    followups, healed partitions)."""

    def test_radical_run_with_followup_duplication_balances(self):
        from repro.bench.experiments import MAIN_APP_BUILDERS
        from repro.core import FunctionRegistry, LVIServer, NearUserRuntime, RadicalConfig
        from repro.obs import all_breakdowns, assert_balanced
        from repro.sim import Metrics
        from repro.storage import KVStore, NearUserCache
        from repro.workloads import ClosedLoopClient, run_clients

        # Duplicate a fraction of CA->VA messages (LVI requests and
        # followups): the protocol must dedup, and every extra wire copy
        # still gets exactly one closed span.
        app = MAIN_APP_BUILDERS["social"]()
        sim, net = build()
        streams = RandomStreams(5)
        metrics = Metrics()
        registry = FunctionRegistry()
        registry.register_all(app.specs())
        store = KVStore()
        app.seed(store, streams, app.context)
        LVIServer(sim, net, registry, store, RadicalConfig(), streams, metrics)
        cache = NearUserCache(Region.CA, persistent=True)
        for table in store.table_names():
            if not table.startswith("_radical"):
                for key, item in store.scan(table):
                    cache.install(table, key, item)
        runtime = NearUserRuntime(sim, net, Region.CA, cache, registry,
                                  RadicalConfig(), streams, metrics)
        net.set_duplicate_probability(Region.CA, Region.VA, 0.3)
        client = ClosedLoopClient(
            sim=sim, app=app, region=Region.CA, invoke=runtime.invoke,
            metrics=metrics, rng=streams.fork("client").stream("workload"),
            requests=40,
        )
        run_clients(sim, [client])
        statuses = assert_balanced_hops(sim, net)
        assert statuses.get("delivered", 0) > 0
        breakdowns = all_breakdowns(sim.obs.spans)
        assert len(breakdowns) == 40
        assert_balanced(breakdowns)
