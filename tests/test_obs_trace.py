"""The tracing spine: contexts, spans, collectors, export, and analysis.

Covers the unit surface of :mod:`repro.obs` plus the kernel integration
contracts: context propagation across spawn/timeout/timer joins, and the
§3.4 requirement that re-execution (timer-driven or crash recovery) stays
attributed to the *original* invocation's trace.
"""

import pytest

from repro.core import (
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    RadicalConfig,
)
from repro.obs import (
    BALANCE_TOLERANCE_MS,
    NOOP_COLLECTOR,
    Breakdown,
    Span,
    TraceCollector,
    TraceContext,
    all_breakdowns,
    assert_balanced,
    critical_path,
    invocation_breakdown,
    orphan_spans,
    read_jsonl,
    spans_to_jsonl,
    trace_digest,
    write_jsonl,
)
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache


class FakeClock:
    """Minimal stand-in for the simulator: a settable clock + context slot."""

    def __init__(self):
        self.now = 0.0
        self.trace_context = None


class TestTraceContext:
    def test_equality_and_hash(self):
        assert TraceContext(1, 2) == TraceContext(1, 2)
        assert TraceContext(1, 2) != TraceContext(1, 3)
        assert TraceContext(1, 2) != "not a context"
        assert len({TraceContext(1, 2), TraceContext(1, 2), TraceContext(2, 2)}) == 2


class TestSpan:
    def test_finish_records_interval_and_attrs(self):
        span = Span(1, 1, 0, "x", "server", start_ms=10.0)
        assert not span.finished
        span.finish(15.0, status="ok")
        assert span.finished
        assert span.duration_ms == 5.0
        assert span.attrs["status"] == "ok"

    def test_double_finish_raises(self):
        span = Span(1, 1, 0, "x", "server", start_ms=0.0)
        span.finish(1.0)
        with pytest.raises(ValueError):
            span.finish(2.0)

    def test_finish_before_start_raises(self):
        span = Span(1, 1, 0, "x", "server", start_ms=5.0)
        with pytest.raises(ValueError):
            span.finish(4.0)

    def test_duration_of_open_span_raises(self):
        with pytest.raises(ValueError):
            Span(1, 1, 0, "x", "server", start_ms=0.0).duration_ms

    def test_record_round_trip(self):
        span = Span(3, 7, 2, "net.hop", "net", 1.5, 2.5, attrs={"src": "a"})
        again = Span.from_record(span.to_record())
        assert again.to_record() == span.to_record()


class TestTraceCollector:
    def test_new_trace_mints_ids_and_children_inherit(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        root = obs.start("invocation", kind="invocation", new_trace=True)
        obs.activate(root.context)
        child = obs.start("server.validate")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id == 0

    def test_orphan_start_gets_its_own_trace(self):
        obs = TraceCollector(FakeClock())
        a = obs.start("a")
        b = obs.start("b")
        assert a.trace_id != b.trace_id

    def test_phase_closes_interval_to_now(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        clock.now = 30.0
        span = obs.phase("phase.overhead", start_ms=17.0)
        assert span.kind == "phase"
        assert span.start_ms == 17.0
        assert span.end_ms == 30.0

    def test_event_is_zero_duration(self):
        clock = FakeClock()
        clock.now = 4.0
        span = TraceCollector(clock).event("cache.hit", table="t")
        assert span.duration_ms == 0.0
        assert span.kind == "event"

    def test_activate_returns_previous(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        ctx = TraceContext(9, 0)
        assert obs.activate(ctx) is None
        assert obs.current() == ctx
        assert obs.activate(None) == ctx

    def test_open_spans(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        open_one = obs.start("open")
        obs.span_at("closed", 0.0, 1.0)
        assert obs.open_spans() == [open_one]

    def test_resume_context_reenters_trace(self):
        obs = TraceCollector(FakeClock())
        ctx = obs.resume_context(42)
        assert ctx.trace_id == 42 and ctx.span_id == 0


class TestNoopCollector:
    def test_disabled_and_inert(self):
        assert NOOP_COLLECTOR.enabled is False
        span = NOOP_COLLECTOR.start("anything", kind="net", attr=1)
        span.finish(0.0)
        span.finish(0.0)  # double finish is a no-op, not an error
        assert len(NOOP_COLLECTOR) == 0
        assert NOOP_COLLECTOR.open_spans() == []
        assert NOOP_COLLECTOR.traces() == {}
        assert NOOP_COLLECTOR.phase("p", 0.0) is NOOP_COLLECTOR.event("e")

    def test_simulator_default_is_noop(self):
        assert Simulator().obs is NOOP_COLLECTOR


class TestExport:
    def _spans(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        root = obs.start("invocation", kind="invocation", new_trace=True, region="jp")
        obs.activate(root.context)
        clock.now = 5.0
        obs.phase("phase.overhead", start_ms=0.0)
        root.finish(5.0, path="speculative")
        return obs.spans

    def test_round_trip(self, tmp_path):
        spans = self._spans()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, spans)
        again = read_jsonl(path)
        assert [s.to_record() for s in again] == [s.to_record() for s in spans]

    def test_extra_tags_every_record(self):
        text = spans_to_jsonl(self._spans(), extra={"app": "social"})
        assert all('"app": "social"' in line for line in text.strip().splitlines())

    def test_trace_id_offset_disambiguates_collectors(self, tmp_path):
        path = str(tmp_path / "merged.jsonl")
        write_jsonl(path, self._spans(), extra={"app": "a"})
        write_jsonl(path, self._spans(), extra={"app": "b"}, append=True,
                    trace_id_offset=100)
        spans = read_jsonl(path)
        assert {s.trace_id for s in spans} == {1, 101}
        assert len(all_breakdowns(spans)) == 2

    def test_digest_is_stable_and_content_sensitive(self):
        a, b = self._spans(), self._spans()
        assert trace_digest(a) == trace_digest(b)
        b[0].attrs["extra"] = True
        assert trace_digest(a) != trace_digest(b)

    def test_empty_spans_serialize_to_empty_string(self):
        assert spans_to_jsonl([]) == ""


class TestAnalyze:
    def _trace(self, e2e=10.0, phases=((0.0, 4.0), (4.0, 10.0))):
        clock = FakeClock()
        obs = TraceCollector(clock)
        root = obs.start("invocation", kind="invocation", new_trace=True,
                         region="ca", function="f", path="ignored")
        obs.activate(root.context)
        for i, (start, end) in enumerate(phases):
            obs.span_at(f"phase.p{i}", start, end, kind="phase")
        root.finish(e2e, path="speculative")
        return obs.spans

    def test_breakdown_balances(self):
        bds = all_breakdowns(self._trace())
        assert len(bds) == 1
        bd = bds[0]
        assert bd.e2e_ms == 10.0
        assert bd.phases == {"phase.p0": 4.0, "phase.p1": 6.0}
        assert bd.balanced()
        assert_balanced(bds)

    def test_unbalanced_trace_raises_with_residual(self):
        bds = all_breakdowns(self._trace(e2e=12.0))
        assert not bds[0].balanced()
        with pytest.raises(AssertionError, match="residual"):
            assert_balanced(bds)

    def test_breakdown_carries_root_attrs(self):
        bd = all_breakdowns(self._trace())[0]
        assert (bd.path, bd.region, bd.function) == ("speculative", "ca", "f")

    def test_trace_without_invocation_root_is_skipped(self):
        obs = TraceCollector(FakeClock())
        obs.span_at("server.reexec", 0.0, 5.0)
        assert invocation_breakdown(obs.spans) is None
        assert all_breakdowns(obs.spans) == []

    def test_repeated_phase_names_accumulate(self):
        spans = self._trace(
            e2e=10.0, phases=((0.0, 1.0), (9.0, 10.0))
        )
        # Rename both to the same phase (the two client_rtt halves).
        for s in spans:
            if s.kind == "phase":
                s.name = "phase.client_rtt"
        bd = all_breakdowns(spans)[0]
        assert bd.phases == {"phase.client_rtt": 2.0}
        assert bd.residual_ms == pytest.approx(8.0)

    def test_orphan_spans_detects_unfinished(self):
        obs = TraceCollector(FakeClock())
        obs.start("leaked")
        assert [s.name for s in orphan_spans(obs.spans)] == ["leaked"]

    def test_critical_path_annotates_dominant_enclosed_span(self):
        clock = FakeClock()
        obs = TraceCollector(clock)
        root = obs.start("invocation", kind="invocation", new_trace=True)
        obs.activate(root.context)
        obs.span_at("phase.overhead", 0.0, 2.0, kind="phase")
        # The overlap phase [2, 10] is ended by the rpc (exec ends early).
        obs.span_at("spec.exec", 2.0, 6.0, kind="exec")
        obs.span_at("rpc", 2.0, 10.0, kind="net")
        obs.span_at("phase.spec_overlap", 2.0, 10.0, kind="phase")
        root.finish(10.0, path="speculative")
        path = critical_path(obs.spans)
        assert path == [("phase.overhead", 2.0), ("phase.spec_overlap/rpc", 8.0)]

    def test_balance_tolerance_is_tight(self):
        assert BALANCE_TOLERANCE_MS == 1e-6
        bd = Breakdown(trace_id=1, e2e_ms=1.0, phases={"p": 1.0 + 5e-7})
        assert bd.balanced()
        bd2 = Breakdown(trace_id=1, e2e_ms=1.0, phases={"p": 1.0 + 5e-6})
        assert not bd2.balanced()


class TestKernelPropagation:
    def test_spawn_inherits_active_context(self):
        sim = Simulator()
        sim.obs = TraceCollector(sim)
        seen = {}

        def child():
            seen["ctx"] = sim.obs.current()
            yield sim.timeout(1.0)
            seen["after_timeout"] = sim.obs.current()

        ctx = TraceContext(5, 1)
        sim.obs.activate(ctx)
        sim.spawn(child())
        sim.obs.activate(None)
        sim.run()
        assert seen["ctx"] == ctx
        assert seen["after_timeout"] == ctx

    def test_sibling_processes_do_not_leak_context(self):
        sim = Simulator()
        sim.obs = TraceCollector(sim)
        seen = {}

        def proc(name):
            yield sim.timeout(1.0)
            seen[name] = sim.obs.current()

        sim.obs.activate(TraceContext(1, 0))
        sim.spawn(proc("a"))
        sim.obs.activate(TraceContext(2, 0))
        sim.spawn(proc("b"))
        sim.obs.activate(None)
        sim.spawn(proc("c"))
        sim.run()
        assert seen["a"] == TraceContext(1, 0)
        assert seen["b"] == TraceContext(2, 0)
        assert seen["c"] is None

    def test_scheduled_callback_captures_context_at_schedule_time(self):
        sim = Simulator()
        sim.obs = TraceCollector(sim)
        seen = {}

        def cb():
            seen["ctx"] = sim.obs.current()

        sim.obs.activate(TraceContext(7, 3))
        sim.schedule(10.0, cb)
        sim.obs.activate(None)
        sim.run()
        assert seen["ctx"] == TraceContext(7, 3)

    def test_activation_inside_process_sticks_for_that_process(self):
        sim = Simulator()
        sim.obs = TraceCollector(sim)
        seen = {}

        def proc():
            sim.obs.activate(TraceContext(11, 0))
            yield sim.timeout(1.0)
            seen["resumed"] = sim.obs.current()

        sim.spawn(proc())
        sim.run()
        assert seen["resumed"] == TraceContext(11, 0)
        assert sim.trace_context is None  # nothing leaks into the kernel


BUMP_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    db_put("counters", f"c:{k}", count + 1)
    return count + 1
'''


def build_traced(followup_timeout_ms=1000.0):
    sim = Simulator()
    sim.obs = TraceCollector(sim)
    streams = RandomStreams(12)
    net = Network(sim, paper_latency_table(), streams)
    metrics = Metrics()
    config = RadicalConfig(
        service_jitter_sigma=0.0, followup_timeout_ms=followup_timeout_ms
    )
    registry = FunctionRegistry()
    registry.register(FunctionSpec("t.bump", BUMP_SRC, 20.0))
    store = KVStore()
    store.put("counters", "c:x", 0)
    server = LVIServer(sim, net, registry, store, config, streams, metrics,
                       name="lvi-server")
    cache = NearUserCache(Region.CA)
    cache.install("counters", "c:x", store.get("counters", "c:x"))
    runtime = NearUserRuntime(sim, net, Region.CA, cache, registry, config,
                              streams, metrics)
    return sim, net, store, server, runtime, registry, config, streams, metrics


def invoke_in_trace(sim, runtime, function_id, args):
    """Open an invocation root (as a workload client would), run the
    invocation under it, and return (root_span, outcome_process)."""
    root = sim.obs.start("invocation", kind="invocation", new_trace=True,
                         function=function_id, region=Region.CA)
    sim.obs.activate(root.context)
    proc = sim.spawn(runtime.invoke(function_id, args))
    sim.obs.activate(None)
    return root, proc


def find_spans(obs, name):
    return [s for s in obs.spans if s.name == name]


class TestReexecutionAttribution:
    def test_timer_reexecution_joins_original_trace(self):
        sim, net, store, server, runtime, *_ = build_traced(followup_timeout_ms=1000.0)
        # The followup crawls: the intent timer fires first and re-executes.
        net.set_extra_delay(Region.CA, Region.VA, 5_000.0)
        root, proc = invoke_in_trace(sim, runtime, "t.bump", ["x"])
        sim.run(until_event=proc.done_event)
        root.finish(sim.now, path=proc.result.path)
        sim.run(until=sim.now + 20_000.0)
        reexec = find_spans(sim.obs, "server.reexec")
        assert len(reexec) == 1
        assert reexec[0].trace_id == root.trace_id
        assert reexec[0].attrs["recovered"] is False
        assert reexec[0].finished
        assert store.get("counters", "c:x").value == 1

    def test_recovery_resurrects_trace_from_intent_record(self):
        sim, net, store, server, runtime, registry, config, streams, metrics = (
            build_traced(followup_timeout_ms=60_000.0)
        )
        root, proc = invoke_in_trace(sim, runtime, "t.bump", ["x"])
        sim.run(until_event=proc.done_event)
        root.finish(sim.now, path=proc.result.path)
        net.unregister("lvi-server")  # crash before the followup lands
        sim.run(until=sim.now + 2000.0)
        assert len(server.intents.pending()) == 1
        assert server.intents.pending()[0].trace_id == root.trace_id

        replacement = LVIServer(
            sim, net, registry, store, config, streams, metrics, name="lvi-server"
        )
        assert sim.run_process(replacement.recover_pending()) == 1
        reexec = find_spans(sim.obs, "server.reexec")
        assert len(reexec) == 1
        # The replacement had no live context — the span re-joined the
        # original invocation's trace via the id persisted in the intent.
        assert reexec[0].trace_id == root.trace_id
        assert reexec[0].attrs["recovered"] is True
        assert store.get("counters", "c:x").value == 1

    def test_intent_without_trace_id_still_reexecutes(self):
        # Intents written by tracing-off runs carry trace_id=0; recovery on
        # a traced replacement must not blow up on them.
        sim, net, store, server, runtime, registry, config, streams, metrics = (
            build_traced(followup_timeout_ms=60_000.0)
        )
        sim.obs = NOOP_COLLECTOR  # the original run is untraced
        proc = sim.spawn(runtime.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        net.unregister("lvi-server")
        sim.run(until=sim.now + 2000.0)
        assert server.intents.pending()[0].trace_id == 0

        sim.obs = TraceCollector(sim)  # the replacement runs traced
        replacement = LVIServer(
            sim, net, registry, store, config, streams, metrics, name="lvi-server"
        )
        assert sim.run_process(replacement.recover_pending()) == 1
        reexec = find_spans(sim.obs, "server.reexec")
        assert len(reexec) == 1
        assert reexec[0].attrs["recovered"] is False
        assert store.get("counters", "c:x").value == 1
