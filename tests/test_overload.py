"""Overload robustness: server-side admission control, the AIMD in-flight
limiter, the direct-path barrier lock, the overload chaos plans with the
metastability verdict, and the goodput plateau-vs-collapse sweep."""

import pytest

from repro.core import RadicalConfig
from repro.core.messages import DirectExecRequest, LVIRequest, WriteFollowup
from repro.errors import FaultConfigError, OverloadedError, UnavailableError
from repro.faults import (
    AdaptiveLimiter,
    SlowServerWindow,
    SurgeWindow,
    builtin_plans,
    run_chaos_case,
)
from repro.sim import Metrics, Region, Simulator

from conftest import build_counter_deployment

KEY = ("counters", "c:x")


def overload_test_config(**overrides) -> RadicalConfig:
    base = dict(
        service_jitter_sigma=0.0,
        server_proc_ms=5.0,
        admission_queue_depth=4,
        admission_sojourn_ms=50.0,
        retry_max_attempts=2,
        retry_base_backoff_ms=1.0,
        retry_jitter_frac=0.0,
    )
    base.update(overrides)
    return RadicalConfig(**base)


def lvi_read(eid: str) -> LVIRequest:
    return LVIRequest(
        execution_id=eid, function_id="t.read", args=("x",),
        read_keys=(KEY,), write_keys=(), versions={KEY: 1},
        origin_region=Region.JP,
    )


class TestAdmissionControl:
    def test_backlogged_server_sheds_with_retry_after_hint(self):
        dep = build_counter_deployment(seed=1, config=overload_test_config())
        sim, net, server = dep.sim, dep.net, dep.server
        rt = dep.runtimes[Region.JP]
        caught = []

        def flood():
            server._proc_free_at = sim.now + 500.0  # CPU backlog >> sojourn
            try:
                yield from net.call(rt.name, server.name, lvi_read("shed-1"),
                                    timeout=10_000.0)
            except OverloadedError as exc:
                caught.append(exc)

        sim.spawn(flood())
        sim.run(until=1_000.0)
        assert len(caught) == 1
        # The hint is the server's backlog plus one service time — enough
        # that an honoring client lands after the queue drained.
        assert caught[0].retry_after_ms > 300.0
        assert dep.metrics.counter("admission.shed") == 1

    def test_shed_leaves_no_state_and_retry_is_readmitted(self):
        dep = build_counter_deployment(seed=1, config=overload_test_config())
        sim, net, server = dep.sim, dep.net, dep.server
        rt = dep.runtimes[Region.JP]
        outcomes = []

        def scenario():
            server._proc_free_at = sim.now + 500.0
            try:
                yield from net.call(rt.name, server.name, lvi_read("re-1"),
                                    timeout=10_000.0)
            except OverloadedError:
                outcomes.append("shed")
            yield sim.timeout(600.0)  # backlog drained
            resp = yield from net.call(rt.name, server.name, lvi_read("re-1"),
                                       timeout=10_000.0)
            outcomes.append(resp.ok)

        sim.spawn(scenario())
        sim.run(until=2_000.0)
        # The same execution id is admitted cleanly the second time: the
        # shed left no dedup entry, no locks, no intent behind.
        assert outcomes == ["shed", True]
        assert dep.metrics.counter("lvi.duplicate_request") == 0
        assert server.locks.held_owners() == []

    def test_depth_cap_bounds_queue_and_sheds_excess(self):
        dep = build_counter_deployment(
            seed=1, config=overload_test_config(admission_sojourn_ms=0.0)
        )
        sim, net, server = dep.sim, dep.net, dep.server
        rt = dep.runtimes[Region.JP]
        ok, shed = [], []

        def one(i):
            try:
                resp = yield from net.call(rt.name, server.name,
                                           lvi_read(f"flood-{i}"),
                                           timeout=60_000.0)
                ok.append(resp.ok)
            except OverloadedError:
                shed.append(i)

        for i in range(30):
            sim.spawn(one(i))
        sim.run(until=5_000.0)
        assert len(ok) + len(shed) == 30
        assert shed, "a 30-deep instantaneous burst must overflow depth 4"
        assert all(ok)
        assert server.max_admission_queue <= 4
        assert server.locks.held_owners() == []


class TestRuntimeBackpressure:
    def test_runtime_honors_retry_after_and_recovers(self):
        dep = build_counter_deployment(seed=2, config=overload_test_config())
        sim, server = dep.sim, dep.server
        rt = dep.runtimes[Region.JP]
        done = []

        def scenario():
            server._proc_free_at = sim.now + 300.0
            started = sim.now
            outcome = yield sim.spawn(rt.invoke("t.read", ["x"]))
            done.append((outcome, sim.now - started))

        sim.spawn(scenario())
        sim.run(until=5_000.0)
        assert len(done) == 1
        outcome, elapsed = done[0]
        assert outcome.result == 0
        # One shed attempt, then a backoff of at least the server's
        # retry-after hint (~300 ms backlog), then a clean admission.
        assert dep.metrics.counter("rpc.overloaded") == 1
        assert dep.metrics.counter("rpc.retry") == 1
        assert elapsed >= 300.0


class TestAdaptiveLimiter:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(FaultConfigError):
            AdaptiveLimiter(sim, max_inflight=0)
        with pytest.raises(FaultConfigError):
            AdaptiveLimiter(sim, max_inflight=4, decrease_cooldown_ms=-1.0)
        with pytest.raises(FaultConfigError):
            AdaptiveLimiter(sim, max_inflight=4, max_queue=-1)

    def test_aimd_window_halves_grows_and_floors(self):
        sim = Simulator()
        lim = AdaptiveLimiter(sim, max_inflight=8, decrease_cooldown_ms=100.0)
        assert lim.window == 8
        lim.on_overload()
        assert lim.window == 4
        lim.on_overload()  # inside the cooldown: one burst counts once
        assert lim.window == 4
        sim.run(until=150.0)
        lim.on_overload()
        assert lim.window == 2
        lim.on_success()
        lim.on_success()  # one full window of successes -> +1 slot
        assert lim.window == 3
        for _ in range(10):
            sim.run(until=sim.now + 200.0)
            lim.on_overload()
        assert lim.window == 1  # floor: the half-open probe always fits

    def test_bounded_wait_queue_rejects_immediately(self):
        sim = Simulator()
        metrics = Metrics()
        lim = AdaptiveLimiter(sim, max_inflight=1, max_queue=1, metrics=metrics)
        order = []

        def holder():
            ok = yield from lim.acquire(deadline_at=10_000.0)
            order.append(("holder", ok, sim.now))
            yield sim.timeout(50.0)
            lim.release()

        def waiter(tag):
            ok = yield from lim.acquire(deadline_at=10_000.0)
            order.append((tag, ok, sim.now))
            if ok:
                lim.release()

        sim.spawn(holder())
        sim.spawn(waiter("queued"))
        sim.spawn(waiter("rejected"))
        sim.run(until=1_000.0)
        assert ("holder", True, 0.0) in order
        # Second waiter found the (bounded) queue full: rejected at once,
        # not enqueued behind an unbounded backlog.
        assert ("rejected", False, 0.0) in order
        assert ("queued", True, 50.0) in order
        assert metrics.counter("limiter.reject") == 1

    def test_deadline_expires_while_queued(self):
        sim = Simulator()
        lim = AdaptiveLimiter(sim, max_inflight=1, max_queue=4)
        result = []

        def holder():
            yield from lim.acquire(deadline_at=10_000.0)
            yield sim.timeout(100.0)
            lim.release()

        def waiter():
            ok = yield from lim.acquire(deadline_at=30.0)
            result.append((ok, sim.now))

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run(until=1_000.0)
        assert result == [(False, 30.0)]


class TestDirectBarrier:
    def test_direct_execution_waits_out_pending_intent(self):
        """Regression for the direct-path race: a direct execution used to
        run against primary state with no locks, so it could read the same
        version a pending speculative intent was about to overwrite and
        mint a duplicate write of that version (found by the gray-limp
        chaos plan).  The write-mode barrier must hold it until the
        intent's followup lands."""
        dep = build_counter_deployment(seed=2, followup_timeout=5_000.0)
        sim, net, server = dep.sim, dep.net, dep.server
        rt = dep.runtimes[Region.JP]

        def speculative():
            req = LVIRequest(
                execution_id="spec-1", function_id="t.bump", args=("x",),
                read_keys=(KEY,), write_keys=(KEY,), versions={KEY: 1},
                origin_region=Region.JP,
            )
            resp = yield from net.call(rt.name, server.name, req, timeout=10_000.0)
            return resp

        p1 = sim.spawn(speculative())
        sim.run(until=400.0)
        assert p1.done and p1.result.ok
        assert p1.result.new_versions[KEY] == 2  # intent pending, locks held

        p2_done_at = []

        def direct():
            req = DirectExecRequest(
                execution_id="dir-1", function_id="t.bump", args=("x",),
                origin_region=Region.JP,
            )
            resp = yield from net.call(rt.name, server.name, req, timeout=60_000.0)
            p2_done_at.append(sim.now)
            return resp

        p2 = sim.spawn(direct())
        sim.run(until=1_500.0)
        # Far longer than an unimpeded direct round trip: the barrier is
        # holding the direct execution behind the pending intent.
        assert not p2.done

        def followup():
            yield from net.call(
                rt.name, server.name,
                WriteFollowup("spec-1", ((KEY[0], KEY[1], 1),)),
                timeout=10_000.0,
            )

        sim.spawn(followup())
        sim.run(until=3_000.0)
        assert p2.done
        # The direct execution observed the intent's write: distinct
        # version, no lost update.
        assert p2.result.backup_write_versions[KEY] == 3
        item = dep.store.get_or_none(*KEY)
        assert (item.value, item.version) == (2, 3)
        assert server.locks.held_owners() == []


class TestLockStats:
    def test_lock_wait_stats_tagged_and_reset_across_crash(self):
        dep = build_counter_deployment(seed=3)
        sim = dep.sim
        rt = dep.runtimes[Region.JP]

        def traffic():
            for _ in range(3):
                yield sim.spawn(rt.invoke("t.bump", ["x"]))

        sim.spawn(traffic())
        sim.run(until=3_000.0)
        server = dep.server
        assert server.locks.acquisitions > 0
        # The same wait numbers flow into the shared metrics bag tagged by
        # server, so observability survives the lock table being replaced.
        samples = dep.metrics.samples_tagged("lock.wait", server=server.name)
        assert len(samples) >= server.locks.acquisitions // 2
        old_locks = server.locks
        server.crash()
        assert server.locks is not old_locks
        assert server.locks.acquisitions == 0
        assert server.locks.total_wait_ms == 0.0
        assert server.locks.max_wait_ms == 0.0
        assert server.locks.held_owners() == []
        server.restart()
        sim.run(until=sim.now + 2_000.0)

        def after():
            outcome = yield sim.spawn(rt.invoke("t.read", ["x"]))
            return outcome

        p = sim.spawn(after())
        sim.run(until=sim.now + 2_000.0)
        assert p.done
        assert server.locks.acquisitions > 0  # fresh table counts afresh


class TestShardedOverload:
    def _sharded_dep(self, **config_overrides):
        from test_sharded_protocol import (  # same sys.path trick as conftest
            HIGH, LOW, build_xfer_deployment,
        )

        config = RadicalConfig(
            service_jitter_sigma=0.0,
            server_proc_ms=5.0,
            admission_queue_depth=4,
            admission_sojourn_ms=50.0,
            rpc_timeout_ms=300.0,
            retry_max_attempts=3,
            retry_base_backoff_ms=10.0,
            retry_max_backoff_ms=50.0,
            retry_jitter_frac=0.0,
            followup_timeout_ms=400.0,
            **config_overrides,
        )
        return build_xfer_deployment(seed=4, config=config), LOW, HIGH

    def test_prepare_shed_aborts_cleanly_then_succeeds(self):
        dep, low, high = self._sharded_dep()
        sim = dep.sim
        rt = dep.runtimes[Region.JP]
        high_server = dep.servers[dep.shard_of("counters", high)]
        done = []

        def scenario():
            # The HIGH shard sheds the first prepare(s); the backlog
            # drains while the runtime backs off, so a later attempt
            # commits the transaction whole.
            high_server._proc_free_at = sim.now + 200.0
            outcome = yield sim.spawn(rt.invoke("t.xfer", [low, high]))
            done.append(outcome)

        sim.spawn(scenario())
        sim.run(until=10_000.0)
        sim.run(until=sim.now + 3 * 400.0 + 1_000.0)  # lease drain
        assert len(done) == 1
        assert dep.metrics.counter("rpc.overloaded") >= 1
        # Exactly-once: both slices applied exactly once, or neither.
        assert dep.get_or_none("counters", low).value == 1
        assert dep.get_or_none("counters", high).value == 1
        for server in dep.servers:
            assert server.locks.held_owners() == []
        assert dep.pending_intents() == []

    def test_deadline_expires_during_retry_backoff_no_partial_commit(self):
        """Satellite: the invocation deadline lands *inside* the overload
        retry backoff on the scatter-gather path (the shed shard's
        retry-after hint exceeds the remaining budget, so the runtime
        sleeps straight into the deadline).  The invocation must fail
        cleanly: no partial commit, no leaked locks, no orphan intents."""
        dep, low, high = self._sharded_dep(invocation_deadline_ms=600.0)
        sim = dep.sim
        rt = dep.runtimes[Region.JP]
        high_server = dep.servers[dep.shard_of("counters", high)]
        failures = []

        def scenario():
            high_server._proc_free_at = sim.now + 1e9  # permanent backlog
            started = sim.now
            try:
                yield sim.spawn(rt.invoke("t.xfer", [low, high]))
            except UnavailableError:
                failures.append(sim.now - started)

        sim.spawn(scenario())
        sim.run(until=10_000.0)
        high_server._proc_free_at = 0.0  # let the drain phase settle
        sim.run(until=sim.now + 3 * 400.0 + 2_000.0)
        assert len(failures) == 1
        # Failed at (not before, not long after) the deadline, which fell
        # mid-backoff after at least one shed prepare.
        assert 600.0 <= failures[0] <= 900.0
        assert dep.metrics.counter("rpc.overloaded") >= 1
        # Presumed abort: the prepared LOW slice must not commit alone.
        assert dep.get_or_none("counters", low).value == 0
        assert dep.get_or_none("counters", high).value == 0
        for server in dep.servers:
            assert server.locks.held_owners() == []
        assert dep.pending_intents() == []


class TestOverloadChaosPlans:
    def test_plan_windows_validate(self):
        with pytest.raises(FaultConfigError):
            SurgeWindow(Region.JP, 0.0, 100.0, rate_rps=0.0).validate()
        with pytest.raises(FaultConfigError):
            SurgeWindow(Region.JP, 0.0, float("inf"), rate_rps=10.0).validate()
        with pytest.raises(FaultConfigError):
            SlowServerWindow("s", 100.0, 50.0, proc_ms=5.0).validate()
        with pytest.raises(FaultConfigError):
            SlowServerWindow("s", 0.0, 100.0, proc_ms=0.0).validate()
        plans = builtin_plans()
        assert plans["surge-jp"].overload
        assert plans["gray-limp"].overload
        assert plans["surge-jp"].surge_windows()
        assert list(plans["gray-limp"].slow_targets()) == ["lvi-server"]

    def test_surge_plan_sheds_and_recovers(self):
        result = run_chaos_case(builtin_plans()["surge-jp"], seed=0)
        assert result.ok
        assert result.shed > 0, "a 220 rps surge must trip admission control"
        assert result.queue_bound_ok
        assert result.max_queue_depth > 0
        assert result.leaked_locks == 0
        assert result.metastable_ok
        assert result.pre_p50_ms is not None and result.post_p50_ms is not None
        # Metastability: post-surge p50 back within 10% of pre-surge.
        assert result.post_p50_ms <= result.pre_p50_ms * 1.10 + 1.0

    def test_gray_limp_regression_direct_path_serializable(self):
        """Seed 1 of gray-limp is the exact case that exposed the unlocked
        direct execution path (duplicate write of one version); it must
        stay serializable now that the barrier serializes direct
        executions against pending intents."""
        result = run_chaos_case(builtin_plans()["gray-limp"], seed=1)
        assert result.ok, result.violation
        assert result.serializable
        assert result.duplicate_writes == 0
        assert result.counters.get("path.direct", 0) >= 1
        assert result.counters.get("admission.shed", 0) > 0


class TestOverloadSweep:
    def test_goodput_plateaus_with_shedding_and_collapses_without(self):
        from repro.bench import sweep_overload

        payload = sweep_overload(rates=(60.0, 160.0), duration_ms=1_200.0,
                                 seed=42, save=False)
        goodput = {
            (p["series"], p["rate_rps"]): p["goodput_rps"]
            for p in payload["points"]
        }
        # Below capacity the stacks agree; far past it the shedding stack
        # keeps (most of) its capacity while the unprotected one collapses
        # under retry amplification.
        assert goodput[("shed-on", 160.0)] > goodput[("shed-off", 160.0)]
        assert goodput[("shed-off", 160.0)] < goodput[("shed-off", 60.0)]
        assert goodput[("shed-on", 160.0)] >= goodput[("shed-on", 60.0)]
        by_point = {(p["series"], p["rate_rps"]): p for p in payload["points"]}
        assert by_point[("shed-on", 160.0)]["shed"] > 0
        assert by_point[("shed-off", 160.0)]["shed"] == 0
        assert by_point[("shed-off", 160.0)]["rpc_timeouts"] > \
            by_point[("shed-on", 160.0)]["rpc_timeouts"]

    def test_overload_point_is_deterministic(self):
        from repro.bench import run_overload_point

        a = run_overload_point(100.0, True, duration_ms=800.0, seed=7)
        b = run_overload_point(100.0, True, duration_ms=800.0, seed=7)
        assert a == b
