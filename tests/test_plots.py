"""Tests for the terminal bar-chart helpers."""

import pytest

from repro.bench.plots import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_structure(self):
        text = bar_chart(["a", "bb"], [10.0, 20.0], width=20, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 3
        assert "10 ms" in lines[1]
        assert "20 ms" in lines[2]

    def test_bars_scale_to_peak(self):
        text = bar_chart(["x", "y"], [5.0, 10.0], width=20)
        bar_x = text.splitlines()[0].split("|")[1]
        bar_y = text.splitlines()[1].split("|")[1]
        assert bar_y.count("█") == 20
        assert bar_x.count("█") == 10

    def test_markers_rendered(self):
        text = bar_chart(["x"], [10.0], markers=[20.0], width=20)
        line = text.splitlines()[0]
        assert "▏" in line
        assert "(p99 20)" in line

    def test_zero_value_has_empty_bar(self):
        text = bar_chart(["x", "y"], [0.0, 10.0], width=10)
        assert text.splitlines()[0].split("|")[1].count("█") == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_labels_right_aligned(self):
        text = bar_chart(["a", "long-label"], [1.0, 2.0], width=5)
        first, second = text.splitlines()
        assert first.index("|") == second.index("|")


class TestGroupedBarChart:
    def test_groups_and_series(self):
        text = grouped_bar_chart(
            ["social", "hotel"],
            {"radical": [100.0, 200.0], "baseline": [150.0, 300.0]},
            width=30,
        )
        lines = text.splitlines()
        assert lines[0] == "social"
        assert "radical" in lines[1]
        assert "baseline" in lines[2]
        assert lines[3] == "hotel"

    def test_scaling_across_all_series(self):
        text = grouped_bar_chart(
            ["g"], {"a": [50.0], "b": [100.0]}, width=10
        )
        bars = [line.split("|")[1] for line in text.splitlines()[1:]]
        assert bars[1].count("█") == 10
        assert bars[0].count("█") == 5
