"""Protocol conformance: the wire carries exactly Figure 3's messages.

Uses the network tracer to record every message of single requests and
asserts the LVI protocol's sequences — including that exactly ONE request
sits on the client's critical path, the property the whole paper is about.
"""

import pytest

from repro.core import (
    DirectExecRequest,
    FunctionRegistry,
    FunctionSpec,
    LVIRequest,
    LVIResponse,
    LVIServer,
    NearUserRuntime,
    RadicalConfig,
    WriteFollowup,
)
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache

READ_SRC = '''
def read(k):
    busy(5000)
    return db_get("items", f"i:{k}")
'''

WRITE_SRC = '''
def write(k, v):
    busy(2000)
    old = db_get("items", f"i:{k}")
    db_put("items", f"i:{k}", v)
    return old
'''


@pytest.fixture
def world():
    sim = Simulator()
    streams = RandomStreams(8)
    net = Network(sim, paper_latency_table(), streams)
    metrics = Metrics()
    config = RadicalConfig(service_jitter_sigma=0.0)
    registry = FunctionRegistry()
    registry.register(FunctionSpec("t.read", READ_SRC, 50.0))
    registry.register(FunctionSpec("t.write", WRITE_SRC, 50.0))
    store = KVStore()
    store.put("items", "i:a", "v0")
    server = LVIServer(sim, net, registry, store, config, streams, metrics)
    cache = NearUserCache(Region.DE)
    cache.install("items", "i:a", store.get("items", "i:a"))
    runtime = NearUserRuntime(sim, net, Region.DE, cache, registry, config, streams, metrics)
    trace = []
    net.tracer = lambda t, src, dst, payload: trace.append((src, dst, payload))
    return sim, runtime, trace


def message_types(trace):
    return [type(p).__name__ for (_s, _d, p) in trace]


class TestWireSequences:
    def test_read_only_success_is_one_round_trip(self, world):
        sim, runtime, trace = world
        sim.run_process(runtime.invoke("t.read", ["a"]))
        sim.run()
        # Exactly: LVIRequest out, LVIResponse back.  Nothing else.
        assert message_types(trace) == ["LVIRequest", "LVIResponse"]
        request = trace[0][2]
        assert request.read_keys == (("items", "i:a"),)
        assert request.write_keys == ()
        assert trace[1][2].ok

    def test_write_success_adds_only_offpath_followup(self, world):
        sim, runtime, trace = world
        outcome = sim.run_process(runtime.invoke("t.write", ["a", "v1"]))
        response_count_at_client_reply = sum(
            1 for (_s, _d, p) in trace if isinstance(p, (LVIRequest, LVIResponse))
        )
        sim.run()
        # On the critical path: one request, one response.
        assert response_count_at_client_reply == 2
        # After the client already responded: the followup and its ack.
        kinds = message_types(trace)
        assert kinds[:2] == ["LVIRequest", "LVIResponse"]
        assert "WriteFollowup" in kinds
        followup = next(p for (_s, _d, p) in trace if isinstance(p, WriteFollowup))
        assert followup.writes == (("items", "i:a", "v1"),)
        assert outcome.path == "speculative"

    def test_lvi_request_carries_cached_versions(self, world):
        sim, runtime, trace = world
        sim.run_process(runtime.invoke("t.read", ["a"]))
        request = trace[0][2]
        assert request.versions == {("items", "i:a"): 1}

    def test_miss_sends_minus_one_version(self, world):
        sim, runtime, trace = world
        sim.run_process(runtime.invoke("t.read", ["ghost"]))
        request = trace[0][2]
        assert request.versions == {("items", "i:ghost"): -1}
        response = trace[1][2]
        assert not response.ok
        assert (("items", "i:ghost")) in response.fresh

    def test_backup_response_carries_repairs(self, world):
        from repro.storage import Item

        sim, runtime, trace = world
        # Bump the primary via a write, then force this region's cache
        # back to the outdated version: the next read must fail validation
        # and the failure response must carry the authoritative repair.
        sim.run_process(runtime.invoke("t.write", ["a", "v1"]))
        sim.run()
        trace.clear()
        runtime.cache.install("items", "i:a", Item("v0", 1))
        sim.run_process(runtime.invoke("t.read", ["a"]))
        response = next(p for (_s, _d, p) in trace if isinstance(p, LVIResponse))
        assert not response.ok
        assert response.result == "v1"
        assert response.fresh[("items", "i:a")].version == 2

    def test_direct_exec_for_unanalyzable(self):
        sim = Simulator()
        streams = RandomStreams(8)
        net = Network(sim, paper_latency_table(), streams)
        registry = FunctionRegistry(analysis_node_budget=10)
        registry.register(FunctionSpec("t.big", READ_SRC, 50.0))
        store = KVStore()
        store.put("items", "i:a", "v0")
        config = RadicalConfig(service_jitter_sigma=0.0)
        LVIServer(sim, net, registry, store, config, streams)
        runtime = NearUserRuntime(
            sim, net, Region.DE, NearUserCache(Region.DE), registry, config, streams
        )
        trace = []
        net.tracer = lambda t, src, dst, payload: trace.append((src, dst, payload))
        sim.run_process(runtime.invoke("t.big", ["a"]))
        kinds = [type(p).__name__ for (_s, _d, p) in trace]
        assert kinds[0] == "DirectExecRequest"
        assert "LVIRequest" not in kinds

    def test_single_coordination_message_before_response(self, world):
        # The paper's core claim, checked on the wire: between invocation
        # and the client response, the runtime sends exactly ONE message
        # to the near-storage location.
        sim, runtime, trace = world
        proc = sim.spawn(runtime.invoke("t.write", ["a", "v1"]))
        sim.run(until_event=proc.done_event)
        outbound = [
            (s, d, p) for (s, d, p) in trace if d == "lvi-server"
        ]
        assert len(outbound) == 1
        assert isinstance(outbound[0][2], LVIRequest)
        sim.run()
