"""Tests for the Raft implementation: elections, replication, failures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft import NotLeader, RaftCluster, RaftConfig
from repro.sim import RandomStreams, Simulator


def make_cluster(seed=1, n=3, **config_kwargs):
    sim = Simulator()
    cluster = RaftCluster(sim, RandomStreams(seed), n=n, config=RaftConfig(**config_kwargs))
    cluster.start()
    return sim, cluster


class TestElections:
    def test_a_leader_emerges(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        assert cluster.leader() is not None

    def test_exactly_one_leader_per_term(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        by_term = {}
        for node in cluster.nodes.values():
            if node.is_leader:
                by_term.setdefault(node.current_term, []).append(node.node_id)
        for term, leaders in by_term.items():
            assert len(leaders) == 1, f"term {term} has leaders {leaders}"

    def test_new_leader_after_crash(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        old = cluster.crash_leader()
        assert old is not None
        sim.run(until=1500.0)
        new = cluster.leader()
        assert new is not None
        assert new.node_id != old

    def test_no_leader_without_majority(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        cluster.crash_leader()
        sim.run(until=800.0)
        cluster.crash_leader()
        sim.run(until=2000.0)
        assert cluster.leader() is None

    def test_five_node_cluster_elects(self):
        sim, cluster = make_cluster(n=5)
        sim.run(until=500.0)
        assert cluster.leader() is not None

    def test_even_cluster_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RaftCluster(sim, RandomStreams(0), n=4)


class TestReplication:
    def test_put_get_roundtrip(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def flow():
            yield from cluster.submit(("put", "k", "v"))
            result = yield from cluster.submit(("get", "k"))
            return result

        assert sim.run_process(flow()) == "v"

    def test_committed_entries_on_majority(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def flow():
            yield from cluster.submit(("put", "x", 42))

        sim.run_process(flow())
        sim.run(until=sim.now + 200.0)
        holders = sum(1 for m in cluster.machines.values() if m.data.get("x") == 42)
        assert holders >= 2

    def test_compare_and_put(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def flow():
            ok1 = yield from cluster.submit(("cap", "k", None, "first"))
            ok2 = yield from cluster.submit(("cap", "k", None, "second"))
            ok3 = yield from cluster.submit(("cap", "k", "first", "third"))
            return [ok1, ok2, ok3]

        assert sim.run_process(flow()) == [True, False, True]

    def test_delete(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def flow():
            yield from cluster.submit(("put", "k", 1))
            existed = yield from cluster.submit(("delete", "k"))
            gone = yield from cluster.submit(("get", "k"))
            return existed, gone

        assert sim.run_process(flow()) == (True, None)

    def test_commits_survive_leader_crash(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def write():
            yield from cluster.submit(("put", "durable", "yes"))

        sim.run_process(write())
        cluster.crash_leader()
        sim.run(until=sim.now + 1500.0)

        def read():
            result = yield from cluster.submit(("get", "durable"))
            return result

        assert sim.run_process(read()) == "yes"

    def test_submission_retries_across_election(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        cluster.crash_leader()

        def flow():
            yield from cluster.submit(("put", "after-crash", 1))
            result = yield from cluster.submit(("get", "after-crash"))
            return result

        assert sim.run_process(flow()) == 1

    def test_submit_to_follower_raises(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        follower = next(n for n in cluster.nodes.values() if not n.is_leader)
        with pytest.raises(NotLeader):
            follower.submit(("put", "x", 1))

    def test_crashed_node_recovers_and_catches_up(self):
        sim, cluster = make_cluster()
        sim.run(until=500.0)
        victim_id = cluster.crash_leader()

        def write():
            yield from cluster.submit(("put", "while-down", 7))

        sim.run_process(write())
        cluster.nodes[victim_id].recover()
        sim.run(until=sim.now + 1000.0)
        assert cluster.machines[victim_id].data.get("while-down") == 7


class TestCommitLatency:
    def test_commit_latency_is_az_scale(self):
        # One fsync + majority AZ round trip with follower fsync: a few ms,
        # the basis of the paper's 2.3 ms/lock figure (§5.6).
        sim, cluster = make_cluster()
        sim.run(until=500.0)

        def flow():
            start = sim.now
            yield from cluster.submit(("put", "timed", 1))
            return sim.now - start

        latency = sim.run_process(flow())
        assert 0.5 < latency < 30.0


class TestLogMatchingProperty:
    @given(
        commands=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 9)),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_state_machines_agree(self, commands, seed):
        sim, cluster = make_cluster(seed=seed)
        sim.run(until=500.0)

        def flow():
            for key, value in commands:
                yield from cluster.submit(("put", key, value))

        sim.run_process(flow())
        sim.run(until=sim.now + 300.0)  # let heartbeats propagate commits
        expected = {}
        for key, value in commands:
            expected[key] = value
        # Every node that has applied the full log agrees with the writes.
        applied = [
            m.data for m in cluster.machines.values()
            if all(k in m.data for k, _v in commands)
        ]
        assert len(applied) >= 2  # majority
        for data in applied:
            for key, value in expected.items():
                assert data[key] == value

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_leader_uniqueness_across_seeds(self, seed):
        sim, cluster = make_cluster(seed=seed)
        sim.run(until=600.0)
        leaders = [n for n in cluster.nodes.values() if n.is_leader]
        terms = {n.current_term for n in leaders}
        assert len(leaders) <= len(terms) or len(leaders) <= 1
