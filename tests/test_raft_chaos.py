"""Chaos tests for Raft: lossy networks, repeated crashes, partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft import NotLeader, RaftCluster, RaftConfig
from repro.sim import RandomStreams, Simulator


def make_cluster(seed=1, n=3):
    sim = Simulator()
    cluster = RaftCluster(sim, RandomStreams(seed), n=n)
    cluster.start()
    sim.run(until=500.0)
    return sim, cluster


class TestLossyNetwork:
    def test_commits_despite_message_loss(self):
        sim, cluster = make_cluster()
        # 20% loss on every AZ link, both directions.
        for i in range(3):
            for j in range(3):
                if i != j:
                    cluster.net.set_drop_probability(f"az{i}", f"az{j}", 0.2)

        def flow():
            for k in range(10):
                yield from cluster.submit(("put", f"k{k}", k))
            result = yield from cluster.submit(("get", "k9"))
            return result

        assert sim.run_process(flow(), until=120_000.0) == 9

    def test_commits_despite_duplication(self):
        sim, cluster = make_cluster()
        for i in range(3):
            for j in range(3):
                if i != j:
                    cluster.net.set_duplicate_probability(f"az{i}", f"az{j}", 0.5)

        def flow():
            for k in range(10):
                yield from cluster.submit(("put", "x", k))
            result = yield from cluster.submit(("get", "x"))
            return result

        assert sim.run_process(flow(), until=120_000.0) == 9

    def test_no_split_brain_under_partition(self):
        sim, cluster = make_cluster()
        leader = cluster.leader()
        leader_az = leader.region
        others = [f"az{i}" for i in range(3) if f"az{i}" != leader_az]
        # Isolate the old leader.
        for az in others:
            cluster.net.partition(leader_az, az)
        sim.run(until=sim.now + 1000.0)
        new = cluster.leader()
        assert new is not None
        assert new.node_id != leader.node_id
        # The isolated node may still think it leads, but it cannot commit:
        # submissions to it never resolve, while the majority side works.
        def flow():
            result = yield from cluster.submit(("put", "key", "majority"))
            return result

        sim.run_process(flow(), until=sim.now + 30_000.0)
        majority_machines = [
            cluster.machines[n.node_id]
            for n in cluster.nodes.values()
            if n.region != leader_az
        ]
        assert any(m.data.get("key") == "majority" for m in majority_machines)
        # The isolated replica never applied it.
        assert cluster.machines[leader.node_id].data.get("key") is None

    def test_heal_after_partition_converges(self):
        sim, cluster = make_cluster()
        leader = cluster.leader()
        leader_az = leader.region
        others = [f"az{i}" for i in range(3) if f"az{i}" != leader_az]
        for az in others:
            cluster.net.partition(leader_az, az)
        sim.run(until=sim.now + 1000.0)

        def write():
            yield from cluster.submit(("put", "during", "partition"))

        sim.run_process(write(), until=sim.now + 30_000.0)
        for az in others:
            cluster.net.heal(leader_az, az)
        sim.run(until=sim.now + 2000.0)
        # The previously isolated node catches up.
        assert cluster.machines[leader.node_id].data.get("during") == "partition"


class TestRepeatedCrashes:
    def test_survives_sequential_leader_crashes_with_recovery(self):
        sim, cluster = make_cluster()
        for round_i in range(3):
            def write(round_i=round_i):
                yield from cluster.submit(("put", f"round{round_i}", round_i))

            sim.run_process(write(), until=sim.now + 30_000.0)
            crashed = cluster.crash_leader()
            sim.run(until=sim.now + 1200.0)
            cluster.nodes[crashed].recover()
            sim.run(until=sim.now + 1200.0)

        def read():
            values = []
            for i in range(3):
                v = yield from cluster.submit(("get", f"round{i}"))
                values.append(v)
            return values

        assert sim.run_process(read(), until=sim.now + 30_000.0) == [0, 1, 2]

    @given(crash_schedule=st.lists(st.booleans(), min_size=2, max_size=5),
           seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_no_committed_write_lost(self, crash_schedule, seed):
        sim, cluster = make_cluster(seed=seed)
        committed = []
        for i, crash in enumerate(crash_schedule):
            def write(i=i):
                yield from cluster.submit(("put", f"w{i}", i))

            sim.run_process(write(), until=sim.now + 60_000.0)
            committed.append(f"w{i}")
            if crash:
                crashed = cluster.crash_leader()
                sim.run(until=sim.now + 1500.0)
                if crashed:
                    cluster.nodes[crashed].recover()
                    sim.run(until=sim.now + 500.0)

        def read_all():
            out = {}
            for key in committed:
                out[key] = yield from cluster.submit(("get", key))
            return out

        result = sim.run_process(read_all(), until=sim.now + 60_000.0)
        for i, key in enumerate(committed):
            assert result[key] == i, key
