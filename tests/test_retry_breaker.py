"""Retry-policy determinism, circuit-breaker state machine, and the
runtime's degradation ladder under a total near-storage blackout."""

import pytest

from repro.core import RadicalConfig
from repro.errors import FaultConfigError, UnavailableError
from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DropWindow,
    FaultPlan,
    FaultScheduler,
    RetryPolicy,
)
from repro.sim import Metrics, RandomStreams, Region, Simulator

from conftest import build_counter_stack


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultConfigError):
            RetryPolicy(base_backoff_ms=-1.0)
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(FaultConfigError):
            RetryPolicy(jitter_frac=1.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_backoff_ms=10.0,
                             backoff_multiplier=2.0, max_backoff_ms=50.0,
                             jitter_frac=0.0)
        assert policy.schedule() == [10.0, 20.0, 40.0, 50.0, 50.0]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(max_attempts=50, base_backoff_ms=100.0,
                             backoff_multiplier=1.0, jitter_frac=0.2)
        rng = RandomStreams(3).stream("jitter")
        for delay in policy.schedule(rng):
            assert 80.0 <= delay <= 120.0

    def test_same_seed_byte_identical_schedule(self):
        policy = RetryPolicy(max_attempts=10, jitter_frac=0.3)
        a = policy.schedule(RandomStreams(42).stream("runtime.jp.retry"))
        b = policy.schedule(RandomStreams(42).stream("runtime.jp.retry"))
        assert a == b
        # A different stream name (or seed) must diverge.
        c = policy.schedule(RandomStreams(42).stream("runtime.ca.retry"))
        assert a != c

    def test_from_config_mirrors_knobs(self):
        config = RadicalConfig(retry_max_attempts=7, retry_base_backoff_ms=5.0,
                               retry_backoff_multiplier=3.0,
                               retry_max_backoff_ms=99.0, retry_jitter_frac=0.0)
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 7
        assert policy.schedule() == [5.0, 15.0, 45.0, 99.0, 99.0, 99.0]


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=1000.0):
        sim = Simulator()
        return sim, CircuitBreaker(sim, failure_threshold=threshold,
                                   cooldown_ms=cooldown, metrics=Metrics(),
                                   name="test")

    def test_opens_at_threshold(self):
        _, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_consecutive_count(self):
        _, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        sim, breaker = self.make(threshold=1, cooldown=1000.0)
        breaker.record_failure()
        assert not breaker.allow()
        sim.run(until=999.0)
        assert not breaker.allow()
        sim.run(until=1000.0)
        assert breaker.allow()          # exactly one probe admitted
        assert breaker.state == HALF_OPEN and breaker.probing
        assert not breaker.allow()      # concurrent requests still fail fast

    def test_probe_success_closes(self):
        sim, breaker = self.make(threshold=1, cooldown=100.0)
        breaker.record_failure()
        sim.run(until=200.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        sim, breaker = self.make(threshold=2, cooldown=100.0)
        breaker.record_failure()
        breaker.record_failure()
        sim.run(until=150.0)
        assert breaker.allow()
        breaker.record_failure()        # the probe fails
        assert breaker.state == OPEN and not breaker.allow()
        sim.run(until=249.0)
        assert not breaker.allow()      # cooldown restarted at t=150
        sim.run(until=250.0)
        assert breaker.allow()

    def test_invalid_knobs_rejected(self):
        sim = Simulator()
        with pytest.raises(FaultConfigError):
            CircuitBreaker(sim, failure_threshold=0)
        with pytest.raises(FaultConfigError):
            CircuitBreaker(sim, cooldown_ms=-1.0)


class TestDegradationLadder:
    """A total near-storage blackout: every invocation must still terminate
    within its deadline, ending in a clean ``UnavailableError``."""

    def blackout_config(self):
        return RadicalConfig(
            service_jitter_sigma=0.0,
            rpc_timeout_ms=400.0,
            retry_max_attempts=2,
            retry_base_backoff_ms=20.0,
            retry_jitter_frac=0.0,
            invocation_deadline_ms=3000.0,
            breaker_failure_threshold=3,
            breaker_cooldown_ms=1000.0,
        )

    def test_blackout_invocations_terminate_within_deadline(self):
        sim, net, store, server, runtimes, metrics = build_counter_stack(
            config=self.blackout_config()
        )
        plan = FaultPlan(
            name="blackout",
            actions=(DropWindow(Region.JP, Region.VA, start_ms=0.0,
                                probability=1.0, bidirectional=True),),
        )
        FaultScheduler(sim, net, plan, metrics=metrics).start()
        rt = runtimes[Region.JP]
        outcomes = []

        def flow():
            for _ in range(8):
                started = sim.now
                try:
                    yield sim.spawn(rt.invoke("t.bump", ["x"]))
                    outcomes.append(("ok", sim.now - started))
                except UnavailableError:
                    outcomes.append(("unavailable", sim.now - started))

        proc = sim.spawn(flow())
        sim.run(until_event=proc.done_event)
        assert len(outcomes) == 8
        assert all(kind == "unavailable" for kind, _ in outcomes)
        assert all(elapsed <= 3000.0 + 1e-9 for _, elapsed in outcomes)
        # The breaker tripped and later invocations failed fast.
        assert metrics.counter("breaker.open") >= 1
        assert metrics.counter("breaker.fast_fail") >= 1
        # Nothing was acked, so nothing may have landed.
        assert store.get("counters", "c:x").value == 0

    def test_breaker_probe_recovers_after_heal(self):
        sim, net, store, server, runtimes, metrics = build_counter_stack(
            config=self.blackout_config()
        )
        plan = FaultPlan(
            name="outage-then-heal",
            actions=(DropWindow(Region.JP, Region.VA, start_ms=0.0,
                                end_ms=4000.0, probability=1.0,
                                bidirectional=True),),
        )
        FaultScheduler(sim, net, plan, metrics=metrics).start()
        rt = runtimes[Region.JP]
        results = []

        def flow():
            # Trip the breaker during the outage...
            for _ in range(4):
                try:
                    yield sim.spawn(rt.invoke("t.bump", ["x"]))
                    results.append("ok")
                except UnavailableError:
                    results.append("unavailable")
            # ...then keep trying after the link heals: the half-open
            # probe must re-close the breaker and invocations succeed.
            while sim.now < 10_000.0 and results[-1] != "ok":
                yield sim.timeout(500.0)
                try:
                    yield sim.spawn(rt.invoke("t.bump", ["x"]))
                    results.append("ok")
                except UnavailableError:
                    results.append("unavailable")

        proc = sim.spawn(flow())
        sim.run(until_event=proc.done_event)
        sim.run(until=sim.now + 3000.0)
        assert results[-1] == "ok"
        assert metrics.counter("breaker.half_open") >= 1
        assert metrics.counter("breaker.closed") >= 1
        assert store.get("counters", "c:x").value == results.count("ok")
