"""Latency-aware routing sweep (repro.bench.routing): sparse PoP
placement, per-policy assignment behaviour, the breakeven analysis, and
worker-count invariance of the parallel sweep."""

import json

import pytest

from repro.bench.routing import (
    _breakeven,
    routing_gate_failures,
    run_routing_point,
    run_routing_sweep,
    sparse_placement,
)
from repro.sim import SyntheticGeoRttDataset


def _point_spec(**overrides):
    spec = {
        "region_count": 6,
        "placement": "dense",
        "policy": "nearest-rtt",
        "requests": 60,
        "seed": 42,
        "rtt_seed": 7,
        "tiered_threshold_ms": 60.0,
        "sparse_pops": 3,
    }
    spec.update(overrides)
    return spec


class TestSparsePlacement:
    def test_starts_at_primary_and_is_deterministic(self):
        ds = SyntheticGeoRttDataset(10, seed=7)
        pops = sparse_placement(ds, 4)
        assert pops[0] == ds.primary_region
        assert len(pops) == 4
        assert len(set(pops)) == 4
        assert pops == sparse_placement(SyntheticGeoRttDataset(10, seed=7), 4)

    def test_k_center_greedy_spreads_out(self):
        # Each added PoP is the region farthest from the chosen set, so
        # every region's distance to its nearest PoP shrinks (weakly) as
        # k grows.
        ds = SyntheticGeoRttDataset(12, seed=3)

        def worst_distance(pops):
            return max(
                min(ds.rtt(r, p) for p in pops)
                for r in ds.region_names() if r not in pops
            )

        assert worst_distance(sparse_placement(ds, 5)) <= worst_distance(
            sparse_placement(ds, 2)
        )

    def test_k_capped_at_region_count(self):
        ds = SyntheticGeoRttDataset(5, seed=1)
        assert len(sparse_placement(ds, 50)) == 5


class TestRoutingPoint:
    def test_dense_nearest_rtt_is_all_home(self):
        point = run_routing_point(_point_spec())
        # With a PoP in every region the nearest PoP is your own.
        assert point["modes"] == {"home": 6}
        assert point["validation_success"] > 0.5
        for c in point["clients"]:
            assert c["samples"] > 0
            assert c["pop"] == c["region"]

    def test_direct_policy_routes_everyone_to_primary(self):
        point = run_routing_point(_point_spec(policy="direct"))
        assert set(point["modes"]) == {"direct"}
        primary = point["primary"]
        for c in point["clients"]:
            assert c["pop"] == primary
            if c["region"] != primary:
                # Direct clients pay (at least) the WAN RTT to primary.
                assert c["median_ms"] >= c["primary_rtt_ms"]

    def test_sparse_placement_mixes_modes(self):
        point = run_routing_point(_point_spec(placement="sparse"))
        assert point["pops"] == 3
        assert sum(point["modes"].values()) == 6
        # Regions without a PoP get an "edge" assignment to a remote one.
        assert point["modes"].get("edge", 0) > 0

    def test_tiered_threshold_forces_direct(self):
        # A tiny threshold makes every remote client fall back to direct.
        point = run_routing_point(_point_spec(
            placement="sparse", policy="tiered", tiered_threshold_ms=0.001,
        ))
        assert point["modes"].get("edge", 0) == 0
        assert point["modes"].get("direct", 0) > 0


class TestBreakeven:
    @staticmethod
    def _fake_point(policy, clients, primary="g00"):
        return {
            "region_count": 4, "placement": "dense", "policy": policy,
            "primary": primary,
            "clients": [
                {"region": r, "pop_rtt_ms": rtt, "median_ms": med}
                for r, rtt, med in clients
            ],
        }

    def test_interpolates_the_crossing(self):
        edge = self._fake_point("nearest-rtt", [
            ("g00", 1.0, 10.0),   # primary — must be excluded
            ("g01", 10.0, 20.0),
            ("g02", 30.0, 40.0),
            ("g03", 50.0, 80.0),
        ])
        direct = self._fake_point("direct", [
            ("g00", 1.0, 10.0),
            ("g01", 10.0, 50.0),  # edge wins by 30
            ("g02", 30.0, 50.0),  # edge wins by 10
            ("g03", 50.0, 60.0),  # edge loses by 20
        ])
        (combo,) = _breakeven([edge, direct])
        assert combo["clients"] == 3  # primary excluded
        assert combo["edge_wins"] == 2
        # Crossing between pop_rtt 30 (adv +10) and 50 (adv -20):
        # 30 + 10/30 * 20 = 36.667.
        assert combo["breakeven_pop_rtt_ms"] == pytest.approx(36.667, abs=0.01)

    def test_edge_always_winning_means_no_breakeven(self):
        edge = self._fake_point("nearest-rtt", [
            ("g00", 1.0, 10.0), ("g01", 10.0, 20.0), ("g02", 30.0, 40.0),
        ])
        direct = self._fake_point("direct", [
            ("g00", 1.0, 10.0), ("g01", 10.0, 50.0), ("g02", 30.0, 70.0),
        ])
        (combo,) = _breakeven([edge, direct])
        assert combo["breakeven_pop_rtt_ms"] is None
        assert combo["edge_wins"] == combo["clients"] == 2


class TestSweep:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_routing_sweep(
            region_counts=(6,), policies=("nearest-rtt", "direct"),
            placements=("dense",), requests=60, workers=2,
        )

    def test_structure_and_gate(self, payload):
        assert len(payload["points"]) == 2
        assert payload["breakeven"]
        assert routing_gate_failures(payload) == []

    def test_worker_count_invariant(self, payload):
        serial = run_routing_sweep(
            region_counts=(6,), policies=("nearest-rtt", "direct"),
            placements=("dense",), requests=60, workers=1,
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_home_region_skipped_off_dense(self):
        payload = run_routing_sweep(
            region_counts=(6,), policies=("home-region",),
            placements=("sparse",), requests=60, workers=1,
            sparse_pops=3,
        )
        assert payload["points"] == []
        assert payload["skipped"]

    def test_gate_catches_bad_points(self, payload):
        doctored = json.loads(json.dumps(payload))
        doctored["points"][0]["validation_success"] = 0.1
        assert any("validation" in f for f in routing_gate_failures(doctored))
