"""Pluggable RTT datasets (repro.sim.rtt): the paper matrix, the seeded
synthetic geo generator behind the routing sweep, external matrix files,
and the config-reference resolver."""

import json

import pytest

from repro.sim import (
    LatencyTable,
    MatrixFileRttDataset,
    PaperRttDataset,
    Region,
    RttDatasetError,
    SyntheticGeoRttDataset,
    UnknownRegionError,
    paper_latency_table,
    resolve_rtt_dataset,
)


class TestPaperRttDataset:
    def test_matches_seed_matrix_exactly(self):
        ds = PaperRttDataset()
        table = ds.latency_table()
        seed = paper_latency_table()
        for a in Region.ALL:
            for b in Region.ALL:
                assert table.rtt(a, b) == seed.rtt(a, b)

    def test_regions_and_primary(self):
        ds = PaperRttDataset()
        assert ds.region_names() == Region.ALL
        assert ds.primary_region == Region.VA
        assert ds.describe()["name"] == "paper"


class TestSyntheticGeo:
    def test_deterministic_across_instances(self):
        a = SyntheticGeoRttDataset(25, seed=7)
        b = SyntheticGeoRttDataset(25, seed=7)
        assert a.coords == b.coords
        assert a.primary_region == b.primary_region
        for x in a.region_names():
            for y in a.region_names():
                assert a.rtt(x, y) == b.rtt(x, y)

    def test_seed_changes_the_world(self):
        a = SyntheticGeoRttDataset(25, seed=7)
        b = SyntheticGeoRttDataset(25, seed=8)
        assert a.coords != b.coords

    def test_symmetric_bounded_and_named(self):
        ds = SyntheticGeoRttDataset(10, seed=42)
        names = ds.region_names()
        assert names == tuple(f"g{i:02d}" for i in range(10))
        assert ds.primary_region in names
        for i, a in enumerate(names):
            assert ds.rtt(a, a) == ds.intra_rtt
            for b in names[i + 1:]:
                rtt = ds.rtt(a, b)
                assert rtt == ds.rtt(b, a)
                assert rtt >= ds.min_rtt
                # Antipodal bound: half the circumference at ~100 km/ms.
                assert rtt < 250.0

    def test_latency_table_is_the_same_matrix(self):
        ds = SyntheticGeoRttDataset(10, seed=42)
        table = ds.latency_table()
        assert isinstance(table, LatencyTable)
        for a in ds.region_names():
            for b in ds.region_names():
                assert table.rtt(a, b) == ds.rtt(a, b)

    def test_region_count_bounds(self):
        with pytest.raises(RttDatasetError, match="at least 2"):
            SyntheticGeoRttDataset(1)
        with pytest.raises(RttDatasetError, match="caps at 512"):
            SyntheticGeoRttDataset(513)

    def test_primary_is_most_central(self):
        ds = SyntheticGeoRttDataset(12, seed=3)

        def mean_rtt(r):
            others = [o for o in ds.region_names() if o != r]
            return sum(ds.rtt(r, o) for o in others) / len(others)

        assert mean_rtt(ds.primary_region) == min(
            mean_rtt(r) for r in ds.region_names()
        )


class TestMatrixFile:
    def _write(self, tmp_path, raw):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(raw))
        return str(path)

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path, {
            "primary": "aa",
            "intra_rtt": 5.0,
            "rtts": {"aa:bb": 40.0, "aa:cc": 90.0, "bb:cc": 60.0},
        })
        ds = MatrixFileRttDataset(path)
        assert ds.region_names() == ("aa", "bb", "cc")
        assert ds.primary_region == "aa"
        table = ds.latency_table()
        assert table.rtt("bb", "aa") == 40.0
        assert table.rtt("aa", "aa") == 5.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(RttDatasetError, match="not found"):
            MatrixFileRttDataset(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RttDatasetError, match="not valid JSON"):
            MatrixFileRttDataset(str(path))

    @pytest.mark.parametrize("raw,message", [
        ({"rtts": {"a:b": 1.0}}, "'primary' and 'rtts'"),
        ({"primary": "a"}, "'primary' and 'rtts'"),
        ({"primary": "a", "rtts": {"a-b": 1.0}}, "bad pair key"),
        ({"primary": "a", "rtts": {"a:b": "fast"}}, "not a number"),
        ({"primary": "a", "rtts": {"a:b": -3.0}}, "non-positive RTT"),
        ({"primary": "zz", "rtts": {"a:b": 1.0}}, "primary 'zz' not in matrix"),
    ])
    def test_malformed_matrix(self, tmp_path, raw, message):
        with pytest.raises(RttDatasetError, match=message):
            MatrixFileRttDataset(self._write(tmp_path, raw))


class TestResolveRef:
    def test_default_and_paper_forms(self):
        assert isinstance(resolve_rtt_dataset(None), PaperRttDataset)
        assert isinstance(resolve_rtt_dataset("paper"), PaperRttDataset)
        assert isinstance(resolve_rtt_dataset({"kind": "paper"}), PaperRttDataset)

    def test_instance_passthrough(self):
        ds = SyntheticGeoRttDataset(5)
        assert resolve_rtt_dataset(ds) is ds

    def test_synthetic_geo_form(self):
        ds = resolve_rtt_dataset({"kind": "synthetic-geo", "n": 15, "seed": 9})
        assert isinstance(ds, SyntheticGeoRttDataset)
        assert ds.n == 15 and ds.seed == 9

    @pytest.mark.parametrize("ref,message", [
        ("dynamodb", "string form only accepts 'paper'"),
        (42, "bad RTT dataset reference"),
        ({"kind": "starlink"}, "unknown RTT dataset kind"),
        ({"kind": "synthetic-geo"}, "needs 'n'"),
        ({"kind": "synthetic-geo", "n": "many"}, "'n' must be an integer"),
        ({"kind": "synthetic-geo", "n": 10, "zoom": 3}, "unknown keys"),
        ({"kind": "matrix-file"}, "needs 'path'"),
    ])
    def test_bad_references(self, ref, message):
        with pytest.raises(RttDatasetError, match=message):
            resolve_rtt_dataset(ref)


class TestUnknownRegionError:
    def test_names_both_regions_and_the_table(self):
        table = paper_latency_table()
        with pytest.raises(UnknownRegionError) as exc:
            table.rtt("va", "mars")
        msg = str(exc.value)
        assert "'va'" in msg and "'mars'" in msg
        assert Region.JP in msg  # the configured set is listed

    def test_still_a_keyerror(self):
        # Legacy callers that catch KeyError keep working.
        with pytest.raises(KeyError):
            paper_latency_table().rtt("mars", "venus")
