"""The scenario layer (repro.scenarios): strict config validation,
scenario discovery/selection, parameter precedence, and the migration
guarantee — the driver regenerates checked-in artifacts byte-identically
from the checked-in configs."""

import json
import os

import pytest

from repro.scenarios import (
    ScenarioError,
    discover_scenarios,
    load_all_scenarios,
    load_scenario_file,
    parse_fault_plan,
    parse_scenario,
    run_scenario,
)
from repro.scenarios.driver import select_scenarios
from repro.scenarios.runners import KINDS


def _base(**overrides):
    raw = {
        "scenario": "demo",
        "kind": "eval-trio",
        "artifact": "demo",
        "params": {"view": "fig4"},
    }
    raw.update(overrides)
    return raw


class TestValidation:
    def test_minimal_config_parses(self):
        spec = parse_scenario(_base())
        assert spec.name == "demo" and spec.kind == "eval-trio"

    @pytest.mark.parametrize("raw,message", [
        ("not an object", "must be a JSON object"),
        (_base(flavour="spicy"), "unknown top-level key"),
        ({"kind": "eval-trio", "artifact": "x"}, r"missing required key\(s\): scenario"),
        (_base(scenario=""), "'scenario' must be a non-empty string"),
        (_base(kind="warp-drive"), "unknown kind 'warp-drive'"),
        (_base(params="fast"), "'params' must be an object"),
        (_base(params={"view": "fig4", "warp": 9}), "unknown parameter"),
        (_base(params={}), r"missing required parameter\(s\) for kind 'eval-trio': view"),
        (_base(params={"view": "fig9"}), "parameter 'view' must be one of"),
        (_base(params={"view": "fig4", "requests": "lots"}),
         "parameter 'requests' must be int"),
        (_base(smoke=[1, 2]), "'smoke' must be an object"),
        (_base(smoke={"warp": 9}), "unknown parameter"),
        (_base(params={"view": "fig4", "rtt": {"kind": "starlink"}}),
         "bad RTT dataset reference"),
        (_base(params={"view": "fig4", "rtt": {"kind": "synthetic-geo"}}),
         "needs 'n'"),
    ])
    def test_malformed_configs_fail_actionably(self, raw, message):
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(raw, source="bad.json")

    def test_errors_name_the_source_file(self):
        with pytest.raises(ScenarioError, match="bad.json"):
            parse_scenario(_base(kind="warp-drive"), source="bad.json")

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ScenarioError, match="available:.*chaos"):
            parse_scenario(_base(kind="nope"))

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{oops")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_scenario_file(str(tmp_path / "ghost.json"))


class TestFaultPlanParsing:
    @staticmethod
    def _plan(actions):
        return {"name": "inline", "actions": actions}

    def test_round_trip(self):
        plan = parse_fault_plan(self._plan([
            {"kind": "drop", "src": "jp", "dst": "va",
             "start_ms": 100, "end_ms": 400},
        ]))
        assert plan.name == "inline" and len(plan.actions) == 1

    @pytest.mark.parametrize("raw,message", [
        ("nope", "must be an object"),
        ({"actions": []}, "needs a non-empty 'name'"),
        ({"name": "p", "retries": 3}, "unknown fault-plan key"),
        ({"name": "p", "actions": "all"}, "'actions' must be a list"),
        ({"name": "p", "actions": ["drop"]}, "must be an object"),
        ({"name": "p", "actions": [{"kind": "meteor"}]}, "unknown action kind"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a", "dst": "b",
                                    "start_ms": 0, "severity": 9}]},
         "unknown field"),
        ({"name": "p", "actions": [{"kind": "drop", "src": "a"}]},
         "missing field"),
    ])
    def test_malformed_plans(self, raw, message):
        with pytest.raises(ScenarioError, match=message):
            parse_fault_plan(raw)

    def test_conflicting_windows_rejected(self):
        # Two drop windows driving the same directed link overlap in
        # [200, 400) — the plan must be rejected before any build.
        with pytest.raises(ScenarioError, match="conflicting windows on"):
            parse_fault_plan(self._plan([
                {"kind": "drop", "src": "jp", "dst": "va",
                 "start_ms": 100, "end_ms": 400},
                {"kind": "drop", "src": "jp", "dst": "va",
                 "start_ms": 200, "end_ms": 600},
            ]))

    def test_chaos_scenario_validates_extra_plans(self):
        raw = {
            "scenario": "demo", "kind": "chaos", "artifact": "demo",
            "params": {"plans": "baseline", "extra_plans": [
                {"name": "bad", "actions": [{"kind": "meteor"}]},
            ]},
        }
        with pytest.raises(ScenarioError, match="unknown action kind"):
            parse_scenario(raw)

    def test_chaos_scenario_rejects_unknown_builtin_plan(self):
        raw = {
            "scenario": "demo", "kind": "chaos", "artifact": "demo",
            "params": {"plans": ["baseline", "solar-flare"]},
        }
        with pytest.raises(ScenarioError, match="unknown fault plan 'solar-flare'"):
            parse_scenario(raw)


class TestResolvedParams:
    def test_precedence_defaults_config_smoke_overrides(self):
        spec = parse_scenario(_base(
            params={"view": "fig4", "requests": 1000},
            smoke={"requests": 99},
        ))
        kind = KINDS["eval-trio"]
        assert spec.resolved_params()["requests"] == 1000
        assert spec.resolved_params(smoke=True)["requests"] == 99
        assert spec.resolved_params(
            overrides={"requests": 5})["requests"] == 5
        # None overrides mean "no override": config value wins.
        assert spec.resolved_params(
            overrides={"requests": None})["requests"] == 1000
        # Defaults fill everything the config left out.
        assert spec.resolved_params()["seed"] == kind.params["seed"].default

    def test_unknown_override_rejected(self):
        spec = parse_scenario(_base())
        with pytest.raises(ScenarioError, match="unknown override"):
            spec.resolved_params(overrides={"warp": 9})


class TestDiscovery:
    def test_all_checked_in_configs_validate(self):
        specs = load_all_scenarios()
        assert len(specs) >= 20
        for name in ("fig4", "chaos", "scalability", "routing"):
            assert name in specs
        # Every artifact a config declares exists under results/.
        from repro.bench.report import results_dir
        for spec in specs.values():
            assert os.path.exists(
                os.path.join(results_dir(), f"{spec.artifact}.json")
            ), f"{spec.name}: missing artifact {spec.artifact}.json"

    def test_file_stem_must_match_scenario_name(self, tmp_path):
        (tmp_path / "alias.json").write_text(json.dumps(_base()))
        with pytest.raises(ScenarioError, match="does not match scenario name"):
            load_all_scenarios(str(tmp_path))

    def test_select_globs_and_all(self):
        specs = load_all_scenarios()
        assert select_scenarios(["all"], specs) == list(specs.values())
        sweeps = select_scenarios(["sweep_*"], specs)
        assert {s.name for s in sweeps} == {
            n for n in specs if n.startswith("sweep_")
        }
        # Duplicates collapse.
        assert len(select_scenarios(["fig4", "fig*"], specs)) == len(
            select_scenarios(["fig*"], specs)
        )

    def test_select_unknown_pattern(self):
        specs = load_all_scenarios()
        with pytest.raises(ScenarioError, match="no scenario matches"):
            select_scenarios(["fig99"], specs)

    def test_discover_missing_dir(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            discover_scenarios(str(tmp_path / "nowhere"))


def _artifact_bytes(name):
    from repro.bench.report import results_dir

    with open(os.path.join(results_dir(), f"{name}.json"), "r",
              encoding="utf-8") as fh:
        return fh.read()


def _payload_bytes(payload):
    # Exactly what repro.bench.save_results writes.
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


@pytest.mark.slow
class TestMigration:
    """The config-driven driver reproduces the checked-in artifacts
    byte-for-byte — the refactor moved the knobs, not the physics."""

    def test_fig4_byte_identical(self):
        payload = run_scenario("fig4", save=False, present=False)
        assert _payload_bytes(payload) == _artifact_bytes("fig4_end_to_end")

    def test_scalability_byte_identical(self):
        payload = run_scenario("scalability", save=False, present=False)
        assert _payload_bytes(payload) == _artifact_bytes("scalability")

    def test_chaos_plan_byte_identical(self):
        # One plan's worth of the chaos matrix: the driver run with
        # plans=["partition-pulse"] must reproduce exactly the cases the
        # checked-in full matrix holds for that plan.
        payload = run_scenario(
            "chaos", overrides={"plans": ["partition-pulse"]},
            save=False, present=False,
        )
        full = json.loads(_artifact_bytes("chaos"))
        want = [c for c in full["cases"] if c["plan"] == "partition-pulse"]
        assert want, "checked-in chaos.json lacks the partition-pulse plan"
        assert _payload_bytes(payload["cases"]) == _payload_bytes(want)
