"""Differential tests: the calendar-queue scheduler must be observationally
identical to the legacy binary-heap scheduler.

The fast-kernel refactor swapped the simulator's event queue (see
``docs/PERFORMANCE.md``).  The legacy implementation stays available for
one PR behind ``Simulator(queue="heap")`` / ``RADICAL_SIM_QUEUE=heap``
precisely so these tests can prove equivalence on real workloads: same
event order, same timestamps, same end-to-end results — not just "both
pass their suites".
"""

import pytest

from repro.sim.core import Simulator

from conftest import build_counter_deployment


def _run_with_queue(monkeypatch, kind, fn):
    """Run ``fn()`` with every Simulator built inside using queue ``kind``."""
    with monkeypatch.context() as m:
        m.setenv("RADICAL_SIM_QUEUE", kind)
        return fn()


class TestKernelEventOrder:
    """Direct kernel-level equivalence on adversarial schedules."""

    @staticmethod
    def _trace(queue: str):
        sim = Simulator(queue=queue)
        order = []

        def cb(label):
            order.append((sim.now, label))
            # Same-time insertions from inside a callback: these land in
            # the immediate lane (calendar) or the heap at key (now, seq),
            # and must fire in FIFO order either way.
            if label.startswith("t") and label.endswith("0"):
                sim.schedule(0.0, cb, label + "+imm")

        def proc(i):
            for k in range(5):
                # Collides across processes (same delay buckets) and with
                # the plain timers below; 0-delay hits the immediate lane.
                yield sim.timeout((i % 7) * 8.0)
                order.append((sim.now, f"p{i}.{k}"))

        for i in range(20):
            sim.spawn(proc(i))
        for i in range(30):
            # Multiples of 16 ms straddle the 32 ms bucket width, so ties
            # occur at bucket boundaries and across bucket promotions.
            sim.schedule(float((i * 16) % 96), cb, f"t{i}")
        sim.run()
        return order

    def test_event_order_identical(self):
        heap = self._trace("heap")
        calendar = self._trace("calendar")
        assert heap == calendar
        assert len(heap) > 100  # the scenario actually exercised ties

    @staticmethod
    def _trace_cancel(queue: str):
        sim = Simulator(queue=queue)
        fired = []
        handles = [
            sim.schedule(float(i % 5) * 10.0, fired.append, i) for i in range(40)
        ]
        # Cancel a deterministic subset before and during the run; the
        # calendar queue uses lazy-cancel tombstones, the heap eager
        # filtering — observable behavior must match.
        for i in range(0, 40, 3):
            handles[i].cancel()
        sim.schedule(15.0, handles[1].cancel)  # in-flight cancellation
        sim.run()
        return sim.now, fired

    def test_cancel_semantics_identical(self):
        assert self._trace_cancel("heap") == self._trace_cancel("calendar")

    @staticmethod
    def _trace_until(queue: str):
        sim = Simulator(queue=queue)
        fired = []
        for i in range(20):
            sim.schedule(float(i) * 7.0, fired.append, i)
        sim.run(until=50.0)
        mid = (sim.now, list(fired))
        sim.run()  # resume past the horizon: nothing may have been lost
        return mid, sim.now, fired

    def test_run_until_identical(self):
        assert self._trace_until("heap") == self._trace_until("calendar")

    def test_queue_kind_validation(self):
        with pytest.raises(ValueError):
            Simulator(queue="fibonacci")
        assert Simulator(queue="heap").queue_kind == "heap"
        assert Simulator().queue_kind in ("heap", "calendar")


class TestFig4Equivalence:
    """The paper's closed-loop workload, end to end, under both queues."""

    @staticmethod
    def _fig4():
        from repro.apps.social import social_media_app
        from repro.bench.harness import ExperimentConfig, run_radical_experiment

        cfg = ExperimentConfig(requests=400, seed=42)
        res = run_radical_experiment(social_media_app(), cfg)
        return {
            "samples": res.metrics.samples("e2e"),
            "virtual": res.virtual_time_ms,
            "events": res.events_dispatched,
            "counters": res.metrics.counters(),
        }

    def test_fig4_identical_under_both_queues(self, monkeypatch):
        heap = _run_with_queue(monkeypatch, "heap", self._fig4)
        calendar = _run_with_queue(monkeypatch, "calendar", self._fig4)
        assert heap == calendar
        assert heap["events"] > 0


class TestChaosEquivalence:
    """A fault plan (drops, duplicates) under both queues: every RNG draw
    happens in the same order, so verdicts and latencies match exactly."""

    def test_flaky_links_identical_under_both_queues(self, monkeypatch):
        from repro.faults import builtin_plans, run_chaos_case

        plan = builtin_plans()["flaky-links"]

        def case():
            return run_chaos_case(plan, seed=7, requests_per_client=10).to_dict()

        assert _run_with_queue(monkeypatch, "heap", case) == _run_with_queue(
            monkeypatch, "calendar", case
        )


class TestShardedEquivalence:
    """Cross-shard scatter/gather under both queues."""

    @staticmethod
    def _sharded():
        from repro.sim import Region

        dep = build_counter_deployment(shards=2)
        runtime = dep.runtimes[Region.JP]
        results = []
        for i in range(8):
            out = dep.sim.run_process(runtime.invoke("t.bump", [i % 3]))
            results.append((out.result, out.path))
        dep.sim.run(until=dep.sim.now + 3_000.0)
        counters = {
            (s_idx, key): item.value
            for s_idx, store in enumerate(dep.stores)
            for key, item in store.scan("counters")
        }
        return results, counters, dep.sim.now, dep.sim.events_dispatched

    def test_sharded_identical_under_both_queues(self, monkeypatch):
        heap = _run_with_queue(monkeypatch, "heap", self._sharded)
        calendar = _run_with_queue(monkeypatch, "calendar", self._sharded)
        assert heap == calendar


@pytest.mark.slow
class TestSweepWorkerInvariance:
    """The parallel sweep runner's merged output may not depend on the
    worker count — chunk results are pure functions of their specs and the
    merge orders by job key."""

    def test_openloop_merge_identical_1_vs_2_workers(self):
        from repro.bench.kernelbench import (
            merge_openloop,
            openloop_chunk_jobs,
            run_sweep,
        )

        jobs = openloop_chunk_jobs(clients=300, chunks=3, seed=11)
        serial = merge_openloop(run_sweep(jobs, workers=1))
        parallel = merge_openloop(run_sweep(jobs, workers=2))
        assert serial["sim"] == parallel["sim"]
        assert serial["sim"]["requests"] > 0

    def test_chunking_is_exhaustive_and_deterministic(self):
        from repro.bench.kernelbench import openloop_chunk_jobs

        jobs = openloop_chunk_jobs(clients=10, chunks=4, seed=3)
        assert sum(spec["clients"] for _, spec in jobs) == 10
        assert [key for key, _ in jobs] == [(0,), (1,), (2,), (3,)]
        assert jobs == openloop_chunk_jobs(clients=10, chunks=4, seed=3)
