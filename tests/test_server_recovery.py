"""LVI server crash recovery: pending intents survive in primary storage.

§5.6's motivation: a singleton server failure leaves the system
unavailable — and any in-flight write intents un-settled.  Because
intents (with their replay inputs) live in the primary store, a
replacement server can recover them: re-execute deterministically, apply
the writes once, and resume serving.
"""

import pytest

from repro.core import (
    FunctionRegistry,
    FunctionSpec,
    LVIServer,
    NearUserRuntime,
    RadicalConfig,
)
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache

BUMP_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", f"c:{k}")
    if count is None:
        count = 0
    db_put("counters", f"c:{k}", count + 1)
    return count + 1
'''


def build():
    sim = Simulator()
    streams = RandomStreams(12)
    net = Network(sim, paper_latency_table(), streams)
    metrics = Metrics()
    # Long followup timeout: the ORIGINAL server never gets to re-execute;
    # recovery on the replacement must do it.
    config = RadicalConfig(service_jitter_sigma=0.0, followup_timeout_ms=60_000.0)
    registry = FunctionRegistry()
    registry.register(FunctionSpec("t.bump", BUMP_SRC, 20.0))
    store = KVStore()
    store.put("counters", "c:x", 0)
    server = LVIServer(sim, net, registry, store, config, streams, metrics,
                       name="lvi-server")
    cache = NearUserCache(Region.CA)
    cache.install("counters", "c:x", store.get("counters", "c:x"))
    runtime = NearUserRuntime(sim, net, Region.CA, cache, registry, config,
                              streams, metrics)
    return sim, net, store, server, runtime, registry, config, streams, metrics


class TestIntentCarriesArgs:
    def test_intent_record_includes_args(self):
        sim, net, store, server, runtime, *_rest = build()
        proc = sim.spawn(runtime.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        pending = server.intents.pending()
        assert len(pending) == 1
        assert pending[0].function_id == "t.bump"
        assert pending[0].args == ("x",)
        sim.run(until=sim.now + 2000.0)  # let the followup settle

    def test_intent_roundtrips_through_storage(self):
        from repro.storage import IntentTable

        store = KVStore()
        table = IntentTable(store)
        table.create("e1", "f.g", now=5.0, args=("a", 7))
        recovered = IntentTable(store).get("e1")
        assert recovered.args == ("a", 7)


class TestServerFailover:
    def test_replacement_server_recovers_pending_intent(self):
        sim, net, store, server, runtime, registry, config, streams, metrics = build()
        # Client gets its answer; the followup is in flight when the
        # server dies.
        proc = sim.spawn(runtime.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        assert proc.result.result == 1
        net.unregister("lvi-server")  # the server host crashes
        sim.run(until=sim.now + 2000.0)
        # The write never reached the primary.
        assert store.get("counters", "c:x").value == 0
        assert len(server.intents.pending()) == 1

        # A replacement boots against the same primary store and recovers.
        replacement = LVIServer(
            sim, net, registry, store, config, streams, metrics, name="lvi-server"
        )
        recovered = sim.run_process(replacement.recover_pending())
        assert recovered == 1
        assert store.get("counters", "c:x").value == 1  # applied exactly once
        assert replacement.intents.pending() == []

    def test_recovery_idempotent_against_late_followup(self):
        sim, net, store, server, runtime, registry, config, streams, metrics = build()
        proc = sim.spawn(runtime.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        # Delay the followup massively, then fail over and recover first.
        net.set_extra_delay(Region.CA, Region.VA, 5_000.0)
        net.unregister("lvi-server")
        replacement = LVIServer(
            sim, net, registry, store, config, streams, metrics, name="lvi-server"
        )
        sim.run_process(replacement.recover_pending())
        assert store.get("counters", "c:x").value == 1
        # The stale followup eventually arrives at the replacement and is
        # discarded: still exactly once.
        sim.run(until=sim.now + 20_000.0)
        item = store.get("counters", "c:x")
        assert item.value == 1
        assert item.version == 2  # seed put + exactly one increment

    def test_replacement_serves_new_requests_after_recovery(self):
        sim, net, store, server, runtime, registry, config, streams, metrics = build()
        proc = sim.spawn(runtime.invoke("t.bump", ["x"]))
        sim.run(until_event=proc.done_event)
        net.unregister("lvi-server")
        replacement = LVIServer(
            sim, net, registry, store, config, streams, metrics, name="lvi-server"
        )
        sim.run_process(replacement.recover_pending())
        outcome = sim.run_process(runtime.invoke("t.bump", ["x"]))
        sim.run(until=sim.now + 2000.0)
        assert outcome.result == 2
        assert store.get("counters", "c:x").value == 2

    def test_recovery_with_no_pending_intents_is_noop(self):
        sim, net, store, server, *_rest = build()
        assert sim.run_process(server.recover_pending()) == 0
