"""Session-guarantee checkers against hand-built violating histories.

The checkers (read-your-writes, monotonic reads, causal cuts) are the
verification instrument the mesh chaos matrix runs — so they must flag
exactly the violations Terry et al. define and stay silent on clean
histories.  Every case here is constructed by hand, not produced by the
protocol, precisely because the protocol is designed never to produce one.
"""

import pytest

from repro.consistency import (
    CutEvent,
    check_causal_cut,
    check_monotonic_reads,
    check_read_your_writes,
    find_causal_cut_violations,
    find_monotonic_read_violations,
    find_read_your_writes_violations,
)
from repro.consistency.history import TxnRecord
from repro.errors import ConsistencyViolation

K = ("counters", "c:x")


def txn(txn_id, t, session="s", reads=None, writes=None):
    return TxnRecord(
        txn_id=txn_id,
        function="t.op",
        invoked_at=t,
        responded_at=t + 1.0,
        reads=dict(reads or {}),
        writes=dict(writes or {}),
        session=session,
    )


class TestReadYourWrites:
    def test_clean_history_passes(self):
        records = [
            txn(0, 0.0, writes={K: 3}),
            txn(1, 10.0, reads={K: 3}),
            txn(2, 20.0, reads={K: 4}),  # newer than the write is fine
        ]
        assert find_read_your_writes_violations(records) == []
        check_read_your_writes(records)

    def test_stale_read_after_own_write_flagged(self):
        records = [
            txn(0, 0.0, writes={K: 3}),
            txn(1, 10.0, reads={K: 2}),  # older than the session's own write
        ]
        violations = find_read_your_writes_violations(records)
        assert len(violations) == 1
        assert "T1" in violations[0] and "v2" in violations[0]
        with pytest.raises(ConsistencyViolation):
            check_read_your_writes(records)

    def test_same_txn_read_before_write_not_flagged(self):
        # A bump reads v2 and writes v3 in one invocation: the read
        # happened before the write, so it owes nothing to it.
        records = [txn(0, 0.0, reads={K: 2}, writes={K: 3})]
        assert find_read_your_writes_violations(records) == []

    def test_sessions_are_independent(self):
        records = [
            txn(0, 0.0, session="a", writes={K: 5}),
            txn(1, 10.0, session="b", reads={K: 1}),  # b never wrote
        ]
        assert find_read_your_writes_violations(records) == []

    def test_sessionless_records_skipped(self):
        records = [
            txn(0, 0.0, session="", writes={K: 5}),
            txn(1, 10.0, session="", reads={K: 1}),
        ]
        assert find_read_your_writes_violations(records) == []

    def test_ordering_is_by_invocation_time_not_insertion(self):
        late_write = txn(0, 50.0, writes={K: 9})
        early_read = txn(1, 0.0, reads={K: 1})
        # The read *preceded* the write in session order: clean.
        assert find_read_your_writes_violations([late_write, early_read]) == []


class TestMonotonicReads:
    def test_clean_history_passes(self):
        records = [
            txn(0, 0.0, reads={K: 2}),
            txn(1, 10.0, reads={K: 2}),
            txn(2, 20.0, reads={K: 5}),
        ]
        assert find_monotonic_read_violations(records) == []
        check_monotonic_reads(records)

    def test_backwards_read_flagged(self):
        records = [
            txn(0, 0.0, reads={K: 5}),
            txn(1, 10.0, reads={K: 3}),  # went backwards
        ]
        violations = find_monotonic_read_violations(records)
        assert len(violations) == 1
        assert "T1" in violations[0] and "v5" in violations[0]
        with pytest.raises(ConsistencyViolation):
            check_monotonic_reads(records)

    def test_every_regression_counted(self):
        k2 = ("counters", "c:y")
        records = [
            txn(0, 0.0, reads={K: 5, k2: 4}),
            txn(1, 10.0, reads={K: 3, k2: 2}),
        ]
        assert len(find_monotonic_read_violations(records)) == 2

    def test_sessions_are_independent(self):
        records = [
            txn(0, 0.0, session="a", reads={K: 5}),
            txn(1, 10.0, session="b", reads={K: 1}),
        ]
        assert find_monotonic_read_violations(records) == []


class TestCausalCut:
    def test_gapless_in_order_log_passes(self):
        log = [
            CutEvent("jp#0", 1),
            CutEvent("jp#0", 2),
            CutEvent("ca#0", 1, deps=(("jp#0", 2),)),
            CutEvent("jp#0", 3, deps=(("ca#0", 1),)),
        ]
        assert find_causal_cut_violations(log) == []
        check_causal_cut(log, label="jp#0")

    def test_sequence_gap_flagged(self):
        log = [CutEvent("jp#0", 1), CutEvent("jp#0", 3)]
        violations = find_causal_cut_violations(log)
        assert len(violations) == 1
        assert "skipped ahead" in violations[0]

    def test_reapplication_flagged(self):
        log = [CutEvent("jp#0", 1), CutEvent("jp#0", 2), CutEvent("jp#0", 2)]
        violations = find_causal_cut_violations(log)
        assert len(violations) == 1
        assert "re-applied" in violations[0]

    def test_unsatisfied_dependency_flagged(self):
        # ca's first update depends on jp:2, but only jp:1 was applied.
        log = [
            CutEvent("jp#0", 1),
            CutEvent("ca#0", 1, deps=(("jp#0", 2),)),
        ]
        violations = find_causal_cut_violations(log, label="ie#0")
        assert len(violations) == 1
        assert "[ie#0]" in violations[0] and "jp#0:2" in violations[0]
        with pytest.raises(ConsistencyViolation):
            check_causal_cut(log, label="ie#0")

    def test_own_origin_prefix_dep_is_implied(self):
        # An origin's deps snapshot includes its own earlier updates; the
        # gap check already covers those, so they must not double-report.
        log = [
            CutEvent("jp#0", 1),
            CutEvent("jp#0", 2, deps=(("jp#0", 1),)),
        ]
        assert find_causal_cut_violations(log) == []

    def test_empty_log_passes(self):
        assert find_causal_cut_violations([]) == []
