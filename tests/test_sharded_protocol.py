"""Cross-shard LVI protocol: scatter-gather prepare/commit, presumed-abort
decision records, lease settlement, request batching, and the serial
processing model (docs/TOPOLOGY.md §cross-shard commit)."""

import pytest

from repro.consistency import HistoryRecorder, check_strict_serializability
from repro.core import FunctionSpec, RadicalConfig, ShardDecision
from repro.errors import ProtocolError, UnavailableError
from repro.sim import Region
from repro.topology import Deployment, RangeShardMap, TopologySpec

BUMP_SRC = '''
def bump(k):
    busy(2000)
    count = db_get("counters", k)
    if count is None:
        count = 0
    db_put("counters", k, count + 1)
    return count + 1
'''

READ2_SRC = '''
def read2(a, b):
    busy(2000)
    va = db_get("counters", a)
    vb = db_get("counters", b)
    return [va, vb]
'''

XFER_SRC = '''
def xfer(a, b):
    busy(2000)
    va = db_get("counters", a)
    if va is None:
        va = 0
    vb = db_get("counters", b)
    if vb is None:
        vb = 0
    db_put("counters", a, va + 1)
    db_put("counters", b, vb + 1)
    return va + vb
'''

# Under RangeShardMap([("counters", "c:m")]): LOW -> shard 0, HIGH -> shard 1.
LOW, HIGH = "c:a", "c:z"


def fast_config(**overrides) -> RadicalConfig:
    base = dict(
        service_jitter_sigma=0.0,
        followup_timeout_ms=400.0,
        rpc_timeout_ms=300.0,
        retry_max_attempts=2,
        retry_base_backoff_ms=10.0,
        retry_max_backoff_ms=50.0,
        retry_jitter_frac=0.0,
    )
    base.update(overrides)
    return RadicalConfig(**base)


def build_xfer_deployment(seed=1, config=None, shards=2,
                          regions=(Region.JP, Region.CA)):
    if config is None:
        config = fast_config()
    return Deployment.build(
        TopologySpec(
            regions=regions,
            shards=shards,
            seed=seed,
            config=config,
            network_jitter_sigma=0.0,
            warm_caches=True,
            persistent_caches=False,
            raft_prewarm_ms=0.0,
            shard_map=RangeShardMap([("counters", "c:m")]) if shards == 2 else None,
        ),
        functions=[
            FunctionSpec("t.xfer", XFER_SRC, 20.0),
            FunctionSpec("t.read2", READ2_SRC, 20.0),
            FunctionSpec("t.bump", BUMP_SRC, 20.0),
        ],
        seed_data=lambda store: (
            store.put("counters", LOW, 0),
            store.put("counters", HIGH, 0),
        ),
    )


def drain(dep, ms=3_000.0):
    dep.sim.run(until=dep.sim.now + ms)


class TestCrossShardCommit:
    def test_commit_updates_both_shards(self):
        dep = build_xfer_deployment()
        outcome = dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.xfer", [LOW, HIGH]))
        assert outcome.result == 0
        assert outcome.path == "speculative"
        # Both slices applied at decision time — before the client ack.
        assert dep.stores[0].get("counters", LOW).value == 1
        assert dep.stores[1].get("counters", HIGH).value == 1
        assert dep.metrics.counter("xshard.commit") == 1
        assert dep.metrics.counter("xshard.applied") == 2
        drain(dep)
        assert dep.pending_intents() == []

    def test_single_shard_requests_keep_the_fast_path(self):
        dep = build_xfer_deployment()
        out_low = dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.bump", [LOW]))
        out_high = dep.sim.run_process(dep.runtimes[Region.CA].invoke("t.bump", [HIGH]))
        assert (out_low.result, out_high.result) == (1, 1)
        assert dep.metrics.counter("xshard.commit") == 0
        assert dep.metrics.counter("path.speculative") == 2
        drain(dep)
        assert dep.stores[0].get("counters", LOW).value == 1
        assert dep.stores[1].get("counters", HIGH).value == 1
        assert dep.pending_intents() == []

    def test_read_only_cross_shard(self):
        dep = build_xfer_deployment()
        outcome = dep.sim.run_process(
            dep.runtimes[Region.JP].invoke("t.read2", [LOW, HIGH])
        )
        assert outcome.result == [0, 0]
        assert dep.metrics.counter("xshard.commit") == 1
        # Read-only slices write no intents and apply nothing.
        assert dep.metrics.counter("xshard.applied") == 0
        assert dep.pending_intents() == []

    def test_stale_cache_repairs_and_restarts(self):
        dep = build_xfer_deployment()
        sim = dep.sim
        assert sim.run_process(dep.runtimes[Region.JP].invoke("t.bump", [HIGH])).result == 1
        # CA's cache still holds HIGH's warmed version: the cross-shard
        # prepare fails validation at shard 1, ships repairs, restarts.
        outcome = sim.run_process(dep.runtimes[Region.CA].invoke("t.xfer", [LOW, HIGH]))
        assert outcome.result == 1  # 0 (LOW) + 1 (freshly-read HIGH)
        assert dep.metrics.counter("xshard.restart") >= 1
        assert dep.metrics.counter("xshard.prepare_abort") >= 1
        drain(dep)
        assert dep.stores[0].get("counters", LOW).value == 1
        assert dep.stores[1].get("counters", HIGH).value == 2
        assert dep.pending_intents() == []

    def test_strict_serializability_under_cross_shard_contention(self):
        dep = build_xfer_deployment(config=fast_config(invocation_deadline_ms=30_000.0))
        sim = dep.sim
        history = HistoryRecorder()
        acked = {"xfer": 0, "bump_low": 0, "bump_high": 0}

        def client(region, ops):
            def flow():
                for fn, args, tag in ops:
                    record = history.begin(fn, sim.now)
                    try:
                        outcome = yield sim.spawn(
                            dep.runtimes[region].invoke(fn, args)
                        )
                    except UnavailableError:
                        continue
                    history.finish(
                        record, sim.now,
                        reads=outcome.read_versions, writes=outcome.write_versions,
                    )
                    acked[tag] += 1
                    yield sim.timeout(5.0)
            return flow

        jp_ops = [("t.xfer", [LOW, HIGH], "xfer"), ("t.bump", [LOW], "bump_low")] * 4
        ca_ops = [("t.bump", [HIGH], "bump_high"), ("t.xfer", [LOW, HIGH], "xfer")] * 4
        p1 = sim.spawn(client(Region.JP, jp_ops)(), name="jp-client")
        p2 = sim.spawn(client(Region.CA, ca_ops)(), name="ca-client")
        sim.run(until_event=sim.all_of([p1.done_event, p2.done_event]))
        drain(dep)

        check_strict_serializability(history.records())
        # Exactly-once: every acked bump/xfer increment is in the stores.
        assert dep.stores[0].get("counters", LOW).value == acked["xfer"] + acked["bump_low"]
        assert dep.stores[1].get("counters", HIGH).value == acked["xfer"] + acked["bump_high"]
        assert dep.pending_intents() == []


class TestDecisionLoss:
    def test_all_decisions_lost_aborts_cleanly(self):
        dep = build_xfer_deployment()
        dep.net.add_drop_filter(
            lambda src, dst, payload: isinstance(payload, ShardDecision)
        )

        def watched():
            try:
                yield dep.sim.spawn(
                    dep.runtimes[Region.JP].invoke("t.xfer", [LOW, HIGH])
                )
            except UnavailableError:
                return "unavailable"
            return "acked"

        assert dep.sim.run_process(watched()) == "unavailable"
        drain(dep, 5_000.0)
        # No decision ever arrived; the leases queried the coordinator,
        # forced the abort tombstone, and dropped both slices.
        assert dep.metrics.counter("xshard.lease_abort") >= 1
        assert dep.stores[0].get("counters", LOW).value == 0
        assert dep.stores[1].get("counters", HIGH).value == 0
        assert dep.pending_intents() == []
        # Locks are free again: new traffic flows on both shards.
        dep.net._drop_filters.clear()
        assert dep.sim.run_process(
            dep.runtimes[Region.CA].invoke("t.xfer", [LOW, HIGH])
        ).result == 0

    def test_participant_decision_lost_lease_applies_exactly_once(self):
        dep = build_xfer_deployment()
        dep.net.add_drop_filter(
            lambda src, dst, payload: (
                isinstance(payload, ShardDecision) and dst == "lvi-server-1"
            )
        )
        # The commit record lands at the coordinator, so the client is
        # acked even though the participant never hears the decision.
        outcome = dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.xfer", [LOW, HIGH]))
        assert outcome.result == 0
        assert dep.metrics.counter("xshard.decision_lost") >= 1
        assert dep.stores[0].get("counters", LOW).value == 1
        drain(dep, 5_000.0)
        # The participant's lease queried the coordinator and applied its
        # slice exactly once.
        assert dep.stores[1].get("counters", HIGH).value == 1
        assert dep.metrics.counter("xshard.applied") == 2
        assert dep.pending_intents() == []


class TestGating:
    def test_unanalyzable_multi_shard_is_a_protocol_error(self):
        dep = build_xfer_deployment()
        # Force the analyzer's verdict: an unanalyzable function has no
        # read/write sets, so it cannot be routed across shards.
        dep.registry.get("t.xfer").analyzed.analyzable = False

        def watched():
            with pytest.raises(ProtocolError, match="unanalyzable"):
                yield dep.sim.spawn(
                    dep.runtimes[Region.JP].invoke("t.xfer", [LOW, HIGH])
                )

        dep.sim.run_process(watched())


class TestBatching:
    def test_concurrent_requests_coalesce(self):
        dep = build_xfer_deployment(
            shards=1, config=fast_config(lvi_batch_window_ms=5.0)
        )
        sim = dep.sim
        procs = [
            sim.spawn(dep.runtimes[Region.JP].invoke("t.bump", [f"c:k{i}"]),
                      name=f"bump{i}")
            for i in range(3)
        ]
        sim.run(until_event=sim.all_of([p.done_event for p in procs]))
        assert [p.result.result for p in procs] == [1, 1, 1]
        assert dep.metrics.counter("batch.coalesced") > 0
        drain(dep)
        for i in range(3):
            assert dep.store.get("counters", f"c:k{i}").value == 1

    def test_batch_of_one_stays_correct(self):
        dep = build_xfer_deployment(
            shards=1, config=fast_config(lvi_batch_window_ms=5.0)
        )
        outcome = dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.bump", [LOW]))
        assert outcome.result == 1
        assert dep.metrics.counter("batch.coalesced") == 0
        drain(dep)
        assert dep.store.get("counters", LOW).value == 1

    def test_window_adds_bounded_delay_only(self):
        plain = build_xfer_deployment(shards=1)
        batched = build_xfer_deployment(
            shards=1, config=fast_config(lvi_batch_window_ms=5.0)
        )
        l_plain = plain.sim.run_process(
            plain.runtimes[Region.JP].invoke("t.bump", [LOW])
        ).latency_ms
        l_batched = batched.sim.run_process(
            batched.runtimes[Region.JP].invoke("t.bump", [LOW])
        ).latency_ms
        assert l_plain <= l_batched <= l_plain + 5.0 + 1e-9

    def test_cross_shard_prepares_ride_the_batcher(self):
        dep = build_xfer_deployment(config=fast_config(lvi_batch_window_ms=5.0))
        outcome = dep.sim.run_process(dep.runtimes[Region.JP].invoke("t.xfer", [LOW, HIGH]))
        assert outcome.result == 0
        assert dep.stores[0].get("counters", LOW).value == 1
        assert dep.stores[1].get("counters", HIGH).value == 1
        drain(dep)
        assert dep.pending_intents() == []


class TestSerialProcessingModel:
    def _two_concurrent(self, server_proc_ms):
        dep = build_xfer_deployment(
            shards=1, config=fast_config(server_proc_ms=server_proc_ms)
        )
        sim = dep.sim
        procs = [
            sim.spawn(dep.runtimes[Region.JP].invoke("t.bump", [f"c:k{i}"]),
                      name=f"bump{i}")
            for i in range(2)
        ]
        sim.run(until_event=sim.all_of([p.done_event for p in procs]))
        return sorted(p.result.latency_ms for p in procs)

    def test_proc_cost_serializes_the_server(self):
        free = self._two_concurrent(0.0)
        charged = self._two_concurrent(10.0)
        assert free[1] - free[0] < 1e-9          # no CPU model: identical
        assert charged[1] - charged[0] >= 10.0 - 1e-9  # serialized behind one CPU
