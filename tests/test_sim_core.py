"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    Interrupted,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(5.0)
            yield sim.timeout(7.5)
            return sim.now

        assert sim.run_process(proc()) == 12.5

    def test_zero_timeout_is_allowed(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_carries_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert sim.run_process(proc()) == "hello"

    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(100.0)

        sim.spawn(proc())
        final = sim.run(until=40.0)
        assert final == 40.0
        assert sim.now == 40.0

    def test_run_until_beyond_queue_advances_clock(self, sim):
        final = sim.run(until=99.0)
        assert final == 99.0

    def test_events_at_same_time_fire_in_schedule_order(self, sim):
        order = []
        sim.schedule(5.0, order.append, "first")
        sim.schedule(5.0, order.append, "second")
        sim.schedule(5.0, order.append, "third")
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_returns_cancellable_handle(self, sim):
        fired = []
        handle = sim.schedule(5.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled and not handle.fired

    def test_negative_schedule_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)


class TestEvents:
    def test_event_value_before_completion_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_trigger_wakes_waiter_with_value(self, sim):
        ev = sim.event()

        def waiter():
            got = yield ev
            return got

        def firer():
            yield sim.timeout(3.0)
            ev.trigger(42)

        proc = sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert proc.result == 42

    def test_yield_on_already_triggered_event_returns_immediately(self, sim):
        ev = sim.event()
        ev.trigger("ready")

        def waiter():
            got = yield ev
            return got, sim.now

        assert sim.run_process(waiter()) == ("ready", 0.0)

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.trigger(2)

    def test_fail_propagates_into_waiter(self, sim):
        ev = sim.event()

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        def firer():
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("boom"))

        proc = sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert proc.result == "caught boom"

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_multiple_waiters_all_wake(self, sim):
        ev = sim.event()
        results = []

        def waiter(i):
            got = yield ev
            results.append((i, got))

        for i in range(3):
            sim.spawn(waiter(i))
        sim.schedule(1.0, ev.trigger, "go")
        sim.run()
        assert sorted(results) == [(0, "go"), (1, "go"), (2, "go")]


class TestCombinators:
    def test_any_of_returns_on_first(self, sim):
        def proc():
            fast = sim.timeout(1.0, "fast")
            slow = sim.timeout(10.0, "slow")
            done = yield sim.any_of([fast, slow])
            return sim.now, done[fast]

        now, value = sim.run_process(proc())
        assert now == 1.0
        assert value == "fast"

    def test_all_of_waits_for_all(self, sim):
        def proc():
            a = sim.timeout(1.0, "a")
            b = sim.timeout(10.0, "b")
            done = yield sim.all_of([a, b])
            return sim.now, done[a], done[b]

        assert sim.run_process(proc()) == (10.0, "a", "b")

    def test_all_of_empty_triggers_immediately(self, sim):
        def proc():
            got = yield sim.all_of([])
            return got

        assert sim.run_process(proc()) == {}

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_any_of_propagates_failure(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield sim.any_of([ev, sim.timeout(50.0)])
            except ValueError:
                return "failed"

        sim.schedule(1.0, lambda: ev.fail(ValueError("x")))
        assert sim.run_process(proc()) == "failed"


class TestProcesses:
    def test_join_returns_child_result(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            result = yield sim.spawn(child())
            return result, sim.now

        assert sim.run_process(parent()) == ("child-done", 2.0)

    def test_child_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        def parent():
            try:
                yield sim.spawn(child())
            except KeyError:
                return "caught"

        assert sim.run_process(parent()) == "caught"

    def test_unobserved_process_exception_aborts_run(self, sim):
        def crasher():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.spawn(crasher())
        with pytest.raises(SimulationError, match="unhandled"):
            sim.run()

    def test_yielding_garbage_is_an_error(self, sim):
        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="yielded"):
            sim.run()

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_interrupt_raises_inside_process(self, sim):
        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupted as exc:
                return f"interrupted by {exc.cause} at {sim.now}"

        proc = sim.spawn(victim())
        sim.schedule(5.0, proc.interrupt, "failure-injection")
        sim.run()
        assert proc.result == "interrupted by failure-injection at 5.0"

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.spawn(quick())
        sim.run()
        proc.interrupt("late")
        sim.run()
        assert proc.result == "done"

    def test_kill_terminates_without_cleanup(self, sim):
        cleaned = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupted:
                cleaned.append(True)

        proc = sim.spawn(victim())
        sim.schedule(5.0, proc.kill)

        def observer():
            try:
                yield proc
            except Interrupted:
                return "observed-kill"

        obs = sim.spawn(observer())
        sim.run()
        assert obs.result == "observed-kill"
        assert cleaned == []  # generator never saw the exception

    def test_uncaught_interrupt_finishes_process_quietly(self, sim):
        # An interrupt the process does not catch terminates it; joiners see
        # the Interrupted, and if nobody joins the sim does not abort
        # (interrupts are deliberate, unlike crashes).
        def victim():
            yield sim.timeout(100.0)

        proc = sim.spawn(victim())
        sim.schedule(1.0, proc.interrupt, "crash")
        sim.run()
        assert proc.done
        with pytest.raises(Interrupted):
            _ = proc.result

    def test_process_result_before_done_raises(self, sim):
        def slow():
            yield sim.timeout(10.0)

        proc = sim.spawn(slow())
        with pytest.raises(SimulationError):
            _ = proc.result

    def test_run_process_unfinished_raises(self, sim):
        def forever():
            while True:
                yield sim.timeout(10.0)

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(forever(), until=25.0)

    def test_nested_joins(self, sim):
        def grandchild():
            yield sim.timeout(1.0)
            return 1

        def child():
            v = yield sim.spawn(grandchild())
            yield sim.timeout(1.0)
            return v + 1

        def parent():
            v = yield sim.spawn(child())
            return v + 1

        assert sim.run_process(parent()) == 3

    def test_many_concurrent_processes_deterministic(self, sim):
        log = []

        def worker(i, delay):
            yield sim.timeout(delay)
            log.append(i)

        for i in range(10):
            sim.spawn(worker(i, delay=float(10 - i)))
        sim.run()
        assert log == list(range(9, -1, -1))

    def test_reentrant_run_rejected(self, sim):
        def proc():
            sim.run()
            yield sim.timeout(1.0)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()
