"""Tests for metrics recording and percentile math."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Metrics, Summary, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([3.0], 0) == 3.0
        assert percentile([3.0], 50) == 3.0
        assert percentile([3.0], 100) == 3.0

    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_p0_and_p100_are_extremes(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        data = [12.5, 3.1, 99.0, 42.0, 7.7, 18.2, 0.4]
        for p in (1, 25, 50, 75, 99):
            assert percentile(data, p) == pytest.approx(float(numpy.percentile(data, p)))

    def test_nan_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], float("nan"))

    def test_duplicate_values(self):
        data = [7.0] * 5
        for p in (0, 25, 50, 75, 100):
            assert percentile(data, p) == 7.0
        # Duplicates mixed with a distinct extreme still interpolate
        # monotonically between the two values present.
        mixed = [1.0, 1.0, 1.0, 9.0]
        assert percentile(mixed, 0) == 1.0
        assert percentile(mixed, 50) == 1.0
        assert percentile(mixed, 100) == 9.0
        assert 1.0 <= percentile(mixed, 80) <= 9.0

    def test_fractional_p_on_two_samples(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 75) == pytest.approx(7.5)

    @given(
        data=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50),
        p=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_bounded_by_extremes(self, data, p):
        result = percentile(data, p)
        assert min(data) <= result <= max(data)

    @given(
        data=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=51),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_p50_is_median_odd_and_even(self, data):
        # Linear interpolation at p=50 coincides with the classic median
        # definition for both odd and even sample counts.
        assert percentile(data, 50) == pytest.approx(
            statistics.median(data), rel=1e-12, abs=1e-9
        )

    @given(
        data=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=30),
        p_lo=st.floats(min_value=0, max_value=100),
        p_hi=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_in_p(self, data, p_lo, p_hi):
        if p_lo > p_hi:
            p_lo, p_hi = p_hi, p_lo
        assert percentile(data, p_lo) <= percentile(data, p_hi) + 1e-9


class TestSummary:
    def test_of_simple_set(self):
        s = Summary.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.median == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_single_sample(self):
        s = Summary.of([42.0])
        assert s.count == 1
        assert s.mean == s.median == s.p99 == s.minimum == s.maximum == 42.0

    def test_all_duplicates(self):
        s = Summary.of([5.0, 5.0, 5.0, 5.0])
        assert s.mean == s.median == s.p99 == 5.0
        assert s.minimum == s.maximum == 5.0
        assert not math.isnan(s.mean)

    def test_p99_near_max_for_large_sets(self):
        samples = list(map(float, range(1000)))
        s = Summary.of(samples)
        assert 985 <= s.p99 <= 999


class TestMetrics:
    def test_record_and_summary(self):
        m = Metrics()
        for v in (10.0, 20.0, 30.0):
            m.record("e2e", v)
        assert m.summary("e2e").median == 20.0

    def test_summary_of_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Metrics().summary("nope")

    def test_samples_returns_copy(self):
        m = Metrics()
        m.record("x", 1.0)
        m.samples("x").append(99.0)
        assert m.samples("x") == [1.0]

    def test_has_and_labels(self):
        m = Metrics()
        m.record("b", 1.0)
        m.record("a", 1.0)
        assert m.has("a") and not m.has("c")
        assert list(m.labels()) == ["a", "b"]

    def test_counters(self):
        m = Metrics()
        m.incr("validation.success", 19)
        m.incr("validation.failure")
        assert m.counter("validation.success") == 19
        assert m.counter("never") == 0
        assert m.counters() == {"validation.success": 19, "validation.failure": 1}

    def test_ratio(self):
        m = Metrics()
        m.incr("hits", 95)
        m.incr("total", 100)
        assert m.ratio("hits", "total") == pytest.approx(0.95)
        assert m.ratio("hits", "zero") is None


class TestTaggedMetrics:
    def test_record_and_match_by_subset(self):
        m = Metrics()
        m.record_tagged("e2e", 10.0, region="jp", path="speculative")
        m.record_tagged("e2e", 20.0, region="jp", path="backup")
        m.record_tagged("e2e", 30.0, region="ie", path="speculative")
        assert sorted(m.samples_tagged("e2e", region="jp")) == [10.0, 20.0]
        assert m.samples_tagged("e2e", path="speculative") == [10.0, 30.0]
        assert m.samples_tagged("e2e", region="jp", path="backup") == [20.0]
        # Empty match selects everything.
        assert sorted(m.samples_tagged("e2e")) == [10.0, 20.0, 30.0]

    def test_tag_order_is_irrelevant(self):
        m = Metrics()
        m.record_tagged("x", 1.0, a="1", b="2")
        m.record_tagged("x", 2.0, b="2", a="1")
        assert m.samples_tagged("x", a="1", b="2") == [1.0, 2.0]
        assert len(m.tag_sets("x")) == 1

    def test_flat_namespace_untouched(self):
        m = Metrics()
        m.record_tagged("e2e", 5.0, region="va")
        assert not m.has("e2e")
        with pytest.raises(KeyError):
            m.summary("e2e")

    def test_summary_tagged(self):
        m = Metrics()
        for v in (10.0, 20.0, 30.0):
            m.record_tagged("e2e", v, path="speculative")
        assert m.summary_tagged("e2e", path="speculative").median == 20.0
        with pytest.raises(KeyError):
            m.summary_tagged("e2e", path="direct")

    def test_tag_sets_sorted(self):
        m = Metrics()
        m.record_tagged("e2e", 1.0, region="jp")
        m.record_tagged("e2e", 1.0, region="ie")
        assert m.tag_sets("e2e") == [{"region": "ie"}, {"region": "jp"}]
        assert m.tag_sets("unknown") == []
