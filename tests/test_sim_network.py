"""Unit tests for the network model: latency table, delivery, RPC, faults."""

import pytest

from repro.sim import (
    Network,
    PAPER_RTT_TO_PRIMARY,
    RandomStreams,
    Region,
    RpcTimeout,
    Simulator,
    paper_latency_table,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, paper_latency_table(), RandomStreams(7))


class TestLatencyTable:
    def test_paper_table2_values(self):
        table = paper_latency_table()
        for region, rtt in PAPER_RTT_TO_PRIMARY.items():
            assert table.rtt(region, Region.VA) == rtt

    def test_symmetric(self):
        table = paper_latency_table()
        assert table.rtt(Region.CA, Region.JP) == table.rtt(Region.JP, Region.CA)

    def test_intra_region_rtt(self):
        table = paper_latency_table()
        assert table.rtt(Region.DE, Region.DE) == 7.0

    def test_one_way_is_half_rtt(self):
        table = paper_latency_table()
        assert table.one_way(Region.JP, Region.VA) == 73.0

    def test_unknown_pair_raises(self):
        table = paper_latency_table()
        with pytest.raises(KeyError):
            table.rtt("mars", Region.VA)

    def test_covers_all_regions(self):
        table = paper_latency_table()
        for a in Region.ALL:
            for b in Region.ALL:
                assert table.rtt(a, b) > 0


class TestDelivery:
    def test_message_arrives_after_one_way_delay(self, sim, net):
        net.register("a", Region.CA)
        ep_b = net.register("b", Region.VA)

        def receiver():
            msg = yield ep_b.recv()
            return msg, sim.now

        proc = sim.spawn(receiver())
        net.send("a", "b", "hello")
        sim.run()
        assert proc.result == ("hello", 37.0)  # 74/2

    def test_in_order_delivery_same_link(self, sim, net):
        net.register("a", Region.CA)
        ep_b = net.register("b", Region.VA)
        out = []

        def receiver():
            for _ in range(3):
                out.append((yield ep_b.recv()))

        sim.spawn(receiver())
        for i in range(3):
            net.send("a", "b", i)
        sim.run()
        assert out == [0, 1, 2]

    def test_handler_endpoint_invoked(self, sim, net):
        seen = []
        net.register("a", Region.VA)
        net.register_handler("h", Region.VA, lambda payload, src: seen.append((payload, src)))
        net.send("a", "h", "ping")
        sim.run()
        assert seen == [("ping", "a")]

    def test_send_to_unregistered_endpoint_dropped(self, sim, net):
        net.register("a", Region.VA)
        assert net.send("a", "ghost", "x") is None
        assert net.messages_dropped == 1

    def test_unregister_drops_in_flight(self, sim, net):
        net.register("a", Region.CA)
        ep = net.register("b", Region.VA)
        net.send("a", "b", "x")
        net.unregister("b")
        sim.run()
        assert len(ep.inbox) == 0
        assert net.messages_dropped == 1

    def test_duplicate_registration_rejected(self, net):
        net.register("a", Region.VA)
        with pytest.raises(ValueError):
            net.register("a", Region.CA)

    def test_jitter_perturbs_delay(self, sim):
        net = Network(sim, paper_latency_table(), RandomStreams(7), jitter_sigma=0.2)
        net.register("a", Region.CA)
        ep = net.register("b", Region.VA)
        times = []

        def receiver():
            for _ in range(5):
                yield ep.recv()
                times.append(sim.now)

        sim.spawn(receiver())
        for _ in range(5):
            net.send("a", "b", "x")
        sim.run()
        gaps = [times[i] - (0 if i == 0 else times[i - 1]) for i in range(len(times))]
        assert len(set(gaps)) > 1  # jitter produced distinct delays


class TestRpc:
    def _serve_echo(self, sim, net, delay=1.0):
        def handler(payload, src):
            yield sim.timeout(delay)
            return ("echo", payload)

        net.serve("server", Region.VA, handler)

    def test_rpc_round_trip_latency(self, sim, net):
        self._serve_echo(sim, net, delay=1.0)
        net.register("client", Region.JP)

        def client():
            resp = yield from net.call("client", "server", "hi")
            return resp, sim.now

        resp, now = sim.run_process(client())
        assert resp == ("echo", "hi")
        assert now == 147.0  # 73 out + 1 service + 73 back

    def test_rpc_intra_region(self, sim, net):
        self._serve_echo(sim, net, delay=0.0)
        net.register("client", Region.VA)

        def client():
            yield from net.call("client", "server", "x")
            return sim.now

        assert sim.run_process(client()) == 7.0

    def test_rpc_server_exception_propagates(self, sim, net):
        def handler(payload, src):
            yield sim.timeout(1.0)
            raise ValueError("server-side")

        net.serve("server", Region.VA, handler)
        net.register("client", Region.CA)

        def client():
            try:
                yield from net.call("client", "server", "x")
            except ValueError as exc:
                return str(exc)

        assert sim.run_process(client()) == "server-side"

    def test_rpc_timeout_when_partitioned(self, sim, net):
        self._serve_echo(sim, net)
        net.register("client", Region.CA)
        net.partition(Region.CA, Region.VA)

        def client():
            try:
                yield from net.call("client", "server", "x", timeout=500.0)
            except RpcTimeout:
                return sim.now

        assert sim.run_process(client()) == 500.0

    def test_rpc_succeeds_after_heal(self, sim, net):
        self._serve_echo(sim, net)
        net.register("client", Region.CA)
        net.partition(Region.CA, Region.VA)
        net.heal(Region.CA, Region.VA)

        def client():
            resp = yield from net.call("client", "server", "x", timeout=500.0)
            return resp

        assert sim.run_process(client()) == ("echo", "x")

    def test_concurrent_rpcs_overlap(self, sim, net):
        self._serve_echo(sim, net, delay=10.0)
        net.register("c1", Region.CA)
        net.register("c2", Region.CA)

        def client(name):
            yield from net.call(name, "server", name)
            return sim.now

        p1 = sim.spawn(client("c1"))
        p2 = sim.spawn(client("c2"))
        sim.run()
        # Both finish at 37+10+37: the server handles them concurrently.
        assert p1.result == p2.result == 84.0


class TestFaultInjection:
    def test_drop_probability_one_loses_everything(self, sim, net):
        net.register("a", Region.CA)
        ep = net.register("b", Region.VA)
        net.set_drop_probability(Region.CA, Region.VA, 1.0)
        for _ in range(10):
            net.send("a", "b", "x")
        sim.run()
        assert net.messages_dropped == 10
        assert len(ep.inbox) == 0

    def test_drop_probability_validation(self, net):
        with pytest.raises(ValueError):
            net.set_drop_probability(Region.CA, Region.VA, 1.5)

    def test_partition_is_directional_when_requested(self, sim, net):
        net.register("a", Region.CA)
        net.register("b", Region.VA)
        epa = net.endpoint("a")
        epb = net.endpoint("b")
        net.partition(Region.CA, Region.VA, bidirectional=False)
        net.send("a", "b", "lost")
        net.send("b", "a", "arrives")
        sim.run()
        assert len(epb.inbox) == 0
        assert len(epa.inbox) == 1

    def test_duplication_delivers_twice(self, sim, net):
        net.register("a", Region.CA)
        ep = net.register("b", Region.VA)
        net.set_duplicate_probability(Region.CA, Region.VA, 1.0)
        net.send("a", "b", "x")
        sim.run()
        assert len(ep.inbox) == 2

    def test_extra_delay_slows_link(self, sim, net):
        net.register("a", Region.CA)
        ep = net.register("b", Region.VA)
        net.set_extra_delay(Region.CA, Region.VA, 100.0)

        def receiver():
            yield ep.recv()
            return sim.now

        proc = sim.spawn(receiver())
        net.send("a", "b", "x")
        sim.run()
        assert proc.result == 137.0
