"""Unit tests for channels, semaphores, mutexes, and gates."""

import pytest

from repro.sim import Channel, Gate, Mutex, Semaphore, SimulationError, Simulator
from repro.sim.primitives import ChannelClosed


@pytest.fixture
def sim():
    return Simulator()


class TestChannel:
    def test_put_then_get(self, sim):
        ch = Channel(sim)
        ch.put("a")

        def proc():
            got = yield ch.get()
            return got

        assert sim.run_process(proc()) == "a"

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)

        def getter():
            got = yield ch.get()
            return got, sim.now

        def putter():
            yield sim.timeout(5.0)
            ch.put("late")

        proc = sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert proc.result == ("late", 5.0)

    def test_fifo_order_items(self, sim):
        ch = Channel(sim)
        for item in ("a", "b", "c"):
            ch.put(item)

        def proc():
            out = []
            for _ in range(3):
                out.append((yield ch.get()))
            return out

        assert sim.run_process(proc()) == ["a", "b", "c"]

    def test_fifo_order_getters(self, sim):
        ch = Channel(sim)
        results = []

        def getter(i):
            got = yield ch.get()
            results.append((i, got))

        for i in range(3):
            sim.spawn(getter(i))

        def putter():
            yield sim.timeout(1.0)
            ch.put("x")
            ch.put("y")
            ch.put("z")

        sim.spawn(putter())
        sim.run()
        assert results == [(0, "x"), (1, "y"), (2, "z")]

    def test_len_reports_queued_items(self, sim):
        ch = Channel(sim)
        ch.put(1)
        ch.put(2)
        assert len(ch) == 2

    def test_close_fails_pending_getters(self, sim):
        ch = Channel(sim)

        def getter():
            try:
                yield ch.get()
            except ChannelClosed:
                return "closed"

        proc = sim.spawn(getter())
        sim.schedule(1.0, ch.close)
        sim.run()
        assert proc.result == "closed"

    def test_put_on_closed_channel_raises(self, sim):
        ch = Channel(sim)
        ch.close()
        with pytest.raises(SimulationError):
            ch.put(1)

    def test_get_on_closed_channel_fails(self, sim):
        ch = Channel(sim)
        ch.close()

        def getter():
            try:
                yield ch.get()
            except ChannelClosed:
                return "closed"

        assert sim.run_process(getter()) == "closed"


class TestSemaphore:
    def test_acquire_up_to_capacity_without_blocking(self, sim):
        sem = Semaphore(sim, capacity=2)

        def proc():
            yield sem.acquire()
            yield sem.acquire()
            return sim.now

        assert sim.run_process(proc()) == 0.0
        assert sem.available == 0

    def test_acquire_blocks_at_capacity(self, sim):
        sem = Semaphore(sim, capacity=1)
        order = []

        def holder():
            yield sem.acquire()
            order.append(("holder", sim.now))
            yield sim.timeout(10.0)
            sem.release()

        def waiter():
            yield sim.timeout(1.0)
            yield sem.acquire()
            order.append(("waiter", sim.now))
            sem.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert order == [("holder", 0.0), ("waiter", 10.0)]

    def test_fifo_wakeup(self, sim):
        sem = Semaphore(sim, capacity=1)
        order = []

        def worker(i):
            yield sem.acquire()
            order.append(i)
            yield sim.timeout(1.0)
            sem.release()

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_over_release_raises(self, sim):
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, capacity=0)


class TestMutex:
    def test_holding_releases_on_success(self, sim):
        mtx = Mutex(sim)

        def work():
            yield sim.timeout(1.0)
            return "ok"

        def proc():
            result = yield sim.spawn(mtx.holding(work()))
            return result, mtx.available

        assert sim.run_process(proc()) == ("ok", 1)

    def test_holding_releases_on_exception(self, sim):
        mtx = Mutex(sim)

        def work():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def proc():
            try:
                yield sim.spawn(mtx.holding(work()))
            except ValueError:
                pass
            return mtx.available

        assert sim.run_process(proc()) == 1

    def test_mutual_exclusion(self, sim):
        mtx = Mutex(sim)
        active = []
        max_active = []

        def work(i):
            active.append(i)
            max_active.append(len(active))
            yield sim.timeout(2.0)
            active.remove(i)

        def proc(i):
            yield sim.spawn(mtx.holding(work(i)))

        for i in range(3):
            sim.spawn(proc(i))
        sim.run()
        assert max(max_active) == 1


class TestGate:
    def test_wait_on_open_gate_is_immediate(self, sim):
        gate = Gate(sim, open_=True)

        def proc():
            yield gate.wait()
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_wait_blocks_until_open(self, sim):
        gate = Gate(sim)

        def proc():
            yield gate.wait()
            return sim.now

        p = sim.spawn(proc())
        sim.schedule(7.0, gate.open)
        sim.run()
        assert p.result == 7.0

    def test_gate_reusable_after_close(self, sim):
        gate = Gate(sim, open_=True)
        gate.close()
        assert not gate.is_open

        def proc():
            yield gate.wait()
            return sim.now

        p = sim.spawn(proc())
        sim.schedule(3.0, gate.open)
        sim.run()
        assert p.result == 3.0
