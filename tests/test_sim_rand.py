"""Tests for deterministic random streams and the bounded Zipf sampler."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams, ZipfSampler


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("jitter")
        b = RandomStreams(42).stream("jitter")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_is_deterministic_and_distinct(self):
        parent = RandomStreams(42)
        child1 = parent.fork("client-1")
        child2 = RandomStreams(42).fork("client-1")
        other = parent.fork("client-2")
        assert child1.stream("w").random() == child2.stream("w").random()
        assert child1.seed != other.seed


class TestZipfSampler:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.99, random.Random(0))

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, random.Random(0))

    def test_samples_in_range(self):
        z = ZipfSampler(100, 0.99, random.Random(0))
        for _ in range(1000):
            assert 0 <= z.sample() < 100

    def test_zero_exponent_is_uniform(self):
        z = ZipfSampler(4, 0.0, random.Random(0))
        for rank in range(4):
            assert z.probability(rank) == pytest.approx(0.25)

    def test_probability_masses_sum_to_one(self):
        z = ZipfSampler(50, 0.99, random.Random(0))
        assert sum(z.probability(k) for k in range(50)) == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        z = ZipfSampler(1000, 0.99, random.Random(0))
        assert z.probability(0) > z.probability(1) > z.probability(999)

    def test_skew_concentrates_mass(self):
        # At zipf 0.99 over 1000 keys (the paper's workload skew), the top
        # 10 keys should draw a large share of samples.
        z = ZipfSampler(1000, 0.99, random.Random(7))
        hits = sum(1 for _ in range(10000) if z.sample() < 10)
        assert hits > 3000

    def test_empirical_matches_theoretical_head(self):
        z = ZipfSampler(100, 0.99, random.Random(3))
        n = 50000
        hits = sum(1 for _ in range(n) if z.sample() == 0)
        expected = z.probability(0)
        assert hits / n == pytest.approx(expected, rel=0.1)

    def test_probability_out_of_range(self):
        z = ZipfSampler(5, 1.0, random.Random(0))
        with pytest.raises(IndexError):
            z.probability(5)

    @given(
        n=st.integers(min_value=1, max_value=200),
        s=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_samples_always_valid(self, n, s, seed):
        z = ZipfSampler(n, s, random.Random(seed))
        for _ in range(20):
            k = z.sample()
            assert 0 <= k < n
        assert math.isclose(sum(z.probability(i) for i in range(n)), 1.0, rel_tol=1e-9)

    @given(s=st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_property_monotone_decreasing_mass(self, s):
        z = ZipfSampler(20, s, random.Random(0))
        masses = [z.probability(k) for k in range(20)]
        assert all(masses[i] >= masses[i + 1] for i in range(19))
