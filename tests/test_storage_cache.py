"""Tests for the near-user cache."""

import pytest

from repro.storage import Item, KVStore, NearUserCache, VERSION_MISS


@pytest.fixture
def cache():
    return NearUserCache(region="jp")


class TestLookups:
    def test_miss_returns_none_and_counts(self, cache):
        assert cache.lookup("t", "k") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_version_of_miss_is_sentinel(self, cache):
        assert cache.version("t", "k") == VERSION_MISS

    def test_install_then_hit(self, cache):
        cache.install("t", "k", Item(value={"v": 1}, version=3))
        entry = cache.lookup("t", "k")
        assert entry.value == {"v": 1}
        assert entry.version == 3
        assert not entry.absent
        assert cache.hits == 1

    def test_install_absent_marker(self, cache):
        cache.install("t", "ghost", None)
        entry = cache.lookup("t", "ghost")
        assert entry.absent
        assert entry.version == 0  # matches primary's VERSION_ABSENT

    def test_hit_rate(self, cache):
        cache.install("t", "k", Item(1, 1))
        cache.lookup("t", "k")
        cache.lookup("t", "other")
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_none_when_untouched(self, cache):
        assert cache.hit_rate() is None


class TestUpdates:
    def test_install_batch_from_lvi_response(self, cache):
        store = KVStore()
        store.put("t", "a", "x")
        fresh = store.batch_get([("t", "a"), ("t", "b")])
        cache.install_batch(fresh)
        assert cache.lookup("t", "a").value == "x"
        assert cache.lookup("t", "b").absent

    def test_apply_local_write_sets_version(self, cache):
        cache.apply_local_write("t", "k", "speculative", version=7)
        entry = cache.lookup("t", "k")
        assert entry.value == "speculative"
        assert entry.version == 7

    def test_invalidate(self, cache):
        cache.install("t", "k", Item(1, 1))
        cache.invalidate("t", "k")
        assert cache.version("t", "k") == VERSION_MISS

    def test_invalidate_missing_is_noop(self, cache):
        cache.invalidate("t", "never")  # must not raise

    def test_len_counts_entries(self, cache):
        cache.install("t", "a", Item(1, 1))
        cache.install("t", "b", Item(2, 1))
        cache.install("t", "a", Item(3, 2))  # overwrite, not new
        assert len(cache) == 2


class TestFailureModel:
    def test_wipe_clears_volatile_cache(self, cache):
        cache.install("t", "k", Item(1, 1))
        cache.wipe()
        assert len(cache) == 0

    def test_wipe_preserves_persistent_cache(self):
        cache = NearUserCache(region="de", persistent=True)
        cache.install("t", "k", Item(1, 1))
        cache.wipe()
        assert cache.lookup("t", "k").value == 1

    def test_force_wipe_clears_even_persistent(self):
        cache = NearUserCache(region="de", persistent=True)
        cache.install("t", "k", Item(1, 1))
        cache.force_wipe()
        assert len(cache) == 0

    def test_rebootstrap_after_wipe(self, cache):
        # A wiped cache recovers entries as LVI responses install them.
        cache.install("t", "k", Item("v1", 1))
        cache.wipe()
        assert cache.version("t", "k") == VERSION_MISS
        cache.install("t", "k", Item("v2", 2))
        assert cache.lookup("t", "k").value == "v2"
