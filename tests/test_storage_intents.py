"""Tests for write intents and idempotency keys."""

import pytest

from repro.errors import ProtocolError
from repro.storage import (
    IdempotencyTable,
    IntentStatus,
    IntentTable,
    KVStore,
)


@pytest.fixture
def store():
    return KVStore()


@pytest.fixture
def intents(store):
    return IntentTable(store)


@pytest.fixture
def idem(store):
    return IdempotencyTable(store)


class TestIntentLifecycle:
    def test_create_is_pending(self, intents):
        intent = intents.create("exec-1", "social.post", now=10.0)
        assert intent.status == IntentStatus.PENDING
        assert intents.get("exec-1").function_id == "social.post"

    def test_duplicate_create_rejected(self, intents):
        intents.create("exec-1", "f", now=0.0)
        with pytest.raises(ProtocolError):
            intents.create("exec-1", "f", now=1.0)

    def test_get_missing_returns_none(self, intents):
        assert intents.get("ghost") is None

    def test_complete_pending_succeeds_once(self, intents):
        intents.create("exec-1", "f", now=0.0)
        assert intents.try_complete("exec-1") is True
        assert intents.get("exec-1").status == IntentStatus.COMPLETED

    def test_second_completion_loses_race(self, intents):
        # The followup handler and the re-execution timer both try to
        # complete; exactly one may apply the writes (§3.6 case 3).
        intents.create("exec-1", "f", now=0.0)
        assert intents.try_complete("exec-1") is True
        assert intents.try_complete("exec-1") is False

    def test_complete_missing_intent_fails(self, intents):
        assert intents.try_complete("ghost") is False

    def test_remove(self, intents):
        intents.create("exec-1", "f", now=0.0)
        assert intents.remove("exec-1") is True
        assert intents.get("exec-1") is None
        assert intents.remove("exec-1") is False

    def test_pending_sweep(self, intents):
        intents.create("a", "f", now=0.0)
        intents.create("b", "f", now=0.0)
        intents.try_complete("a")
        pending = intents.pending()
        assert [i.execution_id for i in pending] == ["b"]

    def test_intents_survive_in_primary_store(self, store, intents):
        # Durability comes from the primary store (§3.1): a "new" server
        # wrapping the same store sees the same intents.
        intents.create("exec-1", "f", now=0.0)
        recovered = IntentTable(store)
        assert recovered.get("exec-1").status == IntentStatus.PENDING


class TestIdempotency:
    def test_claim_each_site_once(self, idem):
        assert idem.claim("e1", IdempotencyTable.NEAR_USER) is True
        assert idem.claim("e1", IdempotencyTable.NEAR_USER) is False
        assert idem.claim("e1", IdempotencyTable.NEAR_STORAGE) is True
        assert idem.claim("e1", IdempotencyTable.NEAR_STORAGE) is False

    def test_at_most_twice_total(self, idem):
        claims = sum(
            idem.claim("e1", site)
            for site in (
                IdempotencyTable.NEAR_USER,
                IdempotencyTable.NEAR_STORAGE,
                IdempotencyTable.NEAR_USER,
                IdempotencyTable.NEAR_STORAGE,
            )
        )
        assert claims == 2

    def test_unknown_site_rejected(self, idem):
        with pytest.raises(ValueError):
            idem.claim("e1", "somewhere")

    def test_claimed_query(self, idem):
        assert not idem.claimed("e1", IdempotencyTable.NEAR_USER)
        idem.claim("e1", IdempotencyTable.NEAR_USER)
        assert idem.claimed("e1", IdempotencyTable.NEAR_USER)

    def test_remove_clears_both_slots(self, idem):
        idem.claim("e1", IdempotencyTable.NEAR_USER)
        idem.claim("e1", IdempotencyTable.NEAR_STORAGE)
        idem.remove("e1")
        assert idem.claim("e1", IdempotencyTable.NEAR_USER) is True

    def test_executions_independent(self, idem):
        idem.claim("e1", IdempotencyTable.NEAR_USER)
        assert idem.claim("e2", IdempotencyTable.NEAR_USER) is True
