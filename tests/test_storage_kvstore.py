"""Tests for the primary KV store: versions, conditional writes, batches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConditionFailed, KeyMissing
from repro.storage import KVStore, VERSION_ABSENT, VERSION_MISS, WriteOp


@pytest.fixture
def store():
    return KVStore()


class TestBasicOps:
    def test_get_missing_raises(self, store):
        with pytest.raises(KeyMissing):
            store.get("users", "alice")

    def test_get_or_none_missing(self, store):
        assert store.get_or_none("users", "alice") is None

    def test_put_then_get(self, store):
        store.put("users", "alice", {"name": "Alice"})
        item = store.get("users", "alice")
        assert item.value == {"name": "Alice"}
        assert item.version == 1

    def test_versions_increment_per_write(self, store):
        for i in range(1, 6):
            assert store.put("t", "k", i) == i
        assert store.get("t", "k").version == 5

    def test_version_of_missing_key_is_absent_sentinel(self, store):
        assert store.version("t", "nope") == VERSION_ABSENT
        assert VERSION_ABSENT == 0
        assert VERSION_MISS == -1  # cache sentinel can never match

    def test_tables_are_independent(self, store):
        store.put("a", "k", 1)
        store.put("b", "k", 2)
        assert store.get("a", "k").value == 1
        assert store.get("b", "k").value == 2

    def test_get_returns_deep_copy(self, store):
        store.put("t", "k", {"list": [1, 2]})
        item = store.get("t", "k")
        item.value["list"].append(3)
        assert store.get("t", "k").value == {"list": [1, 2]}

    def test_put_copies_input(self, store):
        value = {"x": 1}
        store.put("t", "k", value)
        value["x"] = 99
        assert store.get("t", "k").value == {"x": 1}

    def test_delete_existing(self, store):
        store.put("t", "k", 1)
        assert store.delete("t", "k") is True
        assert not store.exists("t", "k")

    def test_delete_missing_returns_false(self, store):
        assert store.delete("t", "nope") is False

    def test_exists(self, store):
        assert not store.exists("t", "k")
        store.put("t", "k", 1)
        assert store.exists("t", "k")


class TestConditionalPut:
    def test_succeeds_on_matching_version(self, store):
        store.put("t", "k", "v1")
        assert store.conditional_put("t", "k", "v2", expected_version=1) == 2

    def test_fails_on_stale_version(self, store):
        store.put("t", "k", "v1")
        store.put("t", "k", "v2")
        with pytest.raises(ConditionFailed):
            store.conditional_put("t", "k", "v3", expected_version=1)

    def test_create_if_absent(self, store):
        store.conditional_put("t", "new", "v", expected_version=VERSION_ABSENT)
        assert store.get("t", "new").value == "v"

    def test_create_if_absent_fails_when_present(self, store):
        store.put("t", "k", "v")
        with pytest.raises(ConditionFailed):
            store.conditional_put("t", "k", "v2", expected_version=VERSION_ABSENT)

    def test_failed_condition_does_not_mutate(self, store):
        store.put("t", "k", "v1")
        with pytest.raises(ConditionFailed):
            store.conditional_put("t", "k", "bad", expected_version=99)
        item = store.get("t", "k")
        assert item.value == "v1" and item.version == 1


class TestBatchOps:
    def test_batch_versions(self, store):
        store.put("t", "a", 1)
        store.put("t", "b", 1)
        store.put("t", "b", 2)
        versions = store.batch_versions([("t", "a"), ("t", "b"), ("t", "c")])
        assert versions == {("t", "a"): 1, ("t", "b"): 2, ("t", "c"): 0}

    def test_batch_get_mixes_present_and_absent(self, store):
        store.put("t", "a", "x")
        out = store.batch_get([("t", "a"), ("t", "b")])
        assert out[("t", "a")].value == "x"
        assert out[("t", "b")] is None

    def test_apply_writes_returns_new_versions(self, store):
        store.put("t", "a", "old")
        versions = store.apply_writes(
            [WriteOp("t", "a", "new"), WriteOp("t", "b", "fresh")]
        )
        assert versions == {("t", "a"): 2, ("t", "b"): 1}
        assert store.get("t", "a").value == "new"

    def test_scan_sorted(self, store):
        store.put("t", "b", 2)
        store.put("t", "a", 1)
        assert [k for k, _item in store.scan("t")] == ["a", "b"]

    def test_counters_track_traffic(self, store):
        store.put("t", "a", 1)
        store.get("t", "a")
        store.get_or_none("t", "b")
        assert store.writes == 1
        assert store.reads == 2

    def test_size_and_table_names(self, store):
        store.put("users", "a", 1)
        store.put("users", "b", 1)
        store.put("posts", "p", 1)
        assert store.size("users") == 2
        assert store.table_names() == ["posts", "users"]


class TestVersionMonotonicity:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["put", "cput-ok", "cput-bad"]), st.integers(0, 3)),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_versions_never_decrease_and_gapless(self, ops):
        store = KVStore()
        last = {}
        for op, key_i in ops:
            key = f"k{key_i}"
            prev = last.get(key, 0)
            if op == "put":
                new = store.put("t", key, op)
                assert new == prev + 1
                last[key] = new
            elif op == "cput-ok":
                new = store.conditional_put("t", key, op, expected_version=prev)
                assert new == prev + 1
                last[key] = new
            else:
                with pytest.raises(ConditionFailed):
                    store.conditional_put("t", key, op, expected_version=prev + 17)
                assert store.version("t", key) == prev
