"""Tests for the read/write lock manager, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LockError
from repro.sim import Simulator
from repro.storage import LockManager, LockMode


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def locks(sim):
    return LockManager(sim)


def acquire(sim, locks, owner, reads=(), writes=(), per_lock_latency=0.0):
    """Spawn an acquisition process and return it."""
    return sim.spawn(
        locks.acquire_all(owner, reads, writes, per_lock_latency),
        name=f"acquire({owner})",
    )


K1 = ("t", "a")
K2 = ("t", "b")
K3 = ("t", "c")


class TestNormalize:
    def test_sorted_lexicographically(self, locks):
        reqs = locks.normalize(read_keys=[K3, K1], write_keys=[K2])
        assert [r.key for r in reqs] == [K1, K2, K3]

    def test_write_subsumes_read(self, locks):
        reqs = locks.normalize(read_keys=[K1], write_keys=[K1])
        assert len(reqs) == 1
        assert reqs[0].mode == LockMode.WRITE

    def test_duplicates_collapsed(self, locks):
        reqs = locks.normalize(read_keys=[K1, K1], write_keys=[K2, K2])
        assert len(reqs) == 2


class TestBasicAcquisition:
    def test_uncontended_acquire_is_instant(self, sim, locks):
        proc = acquire(sim, locks, "e1", reads=[K1], writes=[K2])
        sim.run()
        assert proc.result == 2
        assert locks.held_by("e1") == [(K1, LockMode.READ), (K2, LockMode.WRITE)]

    def test_readers_share(self, sim, locks):
        p1 = acquire(sim, locks, "e1", reads=[K1])
        p2 = acquire(sim, locks, "e2", reads=[K1])
        sim.run()
        assert p1.done and p2.done
        readers, writer = locks.holders(K1)
        assert readers == {"e1", "e2"} and writer is None

    def test_writer_excludes_reader(self, sim, locks):
        acquire(sim, locks, "w", writes=[K1])
        p2 = acquire(sim, locks, "r", reads=[K1])
        sim.run()
        assert not p2.done  # blocked until release
        locks.release_all("w")
        sim.run()
        assert p2.done

    def test_writer_excludes_writer(self, sim, locks):
        acquire(sim, locks, "w1", writes=[K1])
        p2 = acquire(sim, locks, "w2", writes=[K1])
        sim.run()
        assert not p2.done
        locks.release_all("w1")
        sim.run()
        assert p2.done

    def test_reader_blocks_writer(self, sim, locks):
        acquire(sim, locks, "r", reads=[K1])
        pw = acquire(sim, locks, "w", writes=[K1])
        sim.run()
        assert not pw.done
        locks.release_all("r")
        sim.run()
        assert pw.done

    def test_double_acquire_same_owner_rejected(self, sim, locks):
        acquire(sim, locks, "e1", reads=[K1])
        sim.run()
        with pytest.raises(LockError):
            next(locks.acquire_all("e1", [K2], []))

    def test_per_lock_latency_charged(self, sim, locks):
        proc = acquire(sim, locks, "e1", reads=[K1, K2], writes=[K3], per_lock_latency=2.3)

        def observer():
            yield proc
            return sim.now

        obs = sim.spawn(observer())
        sim.run()
        assert obs.result == pytest.approx(3 * 2.3)


class TestFairnessAndOrdering:
    def test_fifo_queue_prevents_barging(self, sim, locks):
        # r1 holds read; w waits; r2 arrives later and must NOT jump the
        # queued writer even though it would be compatible with r1.
        acquire(sim, locks, "r1", reads=[K1])
        pw = acquire(sim, locks, "w", writes=[K1])
        pr2 = acquire(sim, locks, "r2", reads=[K1])
        sim.run()
        assert not pw.done and not pr2.done
        locks.release_all("r1")
        sim.run()
        assert pw.done and not pr2.done  # writer got it first
        locks.release_all("w")
        sim.run()
        assert pr2.done

    def test_reader_batch_wakeup(self, sim, locks):
        acquire(sim, locks, "w", writes=[K1])
        readers = [acquire(sim, locks, f"r{i}", reads=[K1]) for i in range(3)]
        sim.run()
        locks.release_all("w")
        sim.run()
        assert all(r.done for r in readers)
        held, writer = locks.holders(K1)
        assert held == {"r0", "r1", "r2"} and writer is None

    def test_no_deadlock_on_opposite_order_requests(self, sim, locks):
        # Both owners want K1 and K2; sorted acquisition means no deadlock
        # regardless of the order the keys were listed in.
        p1 = acquire(sim, locks, "e1", writes=[K1, K2])
        p2 = acquire(sim, locks, "e2", writes=[K2, K1])
        sim.run()
        done_first = "e1" if p1.done else "e2"
        locks.release_all(done_first)
        sim.run()
        assert p1.done and p2.done

    def test_contended_counter(self, sim, locks):
        acquire(sim, locks, "w1", writes=[K1])
        acquire(sim, locks, "w2", writes=[K1])
        sim.run()
        assert locks.contended_acquisitions == 1


class TestRelease:
    def test_release_unknown_owner_raises(self, locks):
        with pytest.raises(LockError):
            locks.release_all("ghost")

    def test_double_release_raises(self, sim, locks):
        acquire(sim, locks, "e1", reads=[K1])
        sim.run()
        assert locks.release_all("e1") == 1
        with pytest.raises(LockError):
            locks.release_all("e1")

    def test_record_garbage_collected_when_idle(self, sim, locks):
        acquire(sim, locks, "e1", reads=[K1])
        sim.run()
        locks.release_all("e1")
        assert locks.holders(K1) == (set(), None)
        assert locks.queue_length(K1) == 0


class TestInvariantsPropertyBased:
    @given(
        script=st.lists(
            st.tuples(
                st.integers(0, 5),                 # owner index
                st.sets(st.integers(0, 3), max_size=3),  # read key indexes
                st.sets(st.integers(0, 3), max_size=2),  # write key indexes
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_rw_invariants_hold_under_random_schedules(self, script):
        sim = Simulator()
        locks = LockManager(sim)
        keys = [("t", f"k{i}") for i in range(4)]
        active = {}

        def worker(owner, reads, writes, hold):
            yield sim.spawn(locks.acquire_all(owner, reads, writes))
            locks.assert_invariants()
            yield sim.timeout(hold)
            locks.release_all(owner)
            locks.assert_invariants()

        for step, (owner_i, reads_i, writes_i) in enumerate(script):
            owner = f"o{owner_i}-{step}"
            reads = [keys[i] for i in reads_i]
            writes = [keys[i] for i in writes_i]
            if not reads and not writes:
                continue
            active[owner] = sim.spawn(worker(owner, reads, writes, hold=float(step % 3)))
        sim.run()
        for proc in active.values():
            assert proc.done
        locks.assert_invariants()
