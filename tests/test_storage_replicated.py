"""Tests for the ABD quorum store (geo-replicated baseline of Figure 1)."""

import pytest

from repro.sim import Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import ReplicatedStore, Timestamp


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, paper_latency_table(), RandomStreams(5))
    store = ReplicatedStore(sim, net, [Region.VA, Region.OH, Region.OR])
    return sim, net, store


class TestTimestamp:
    def test_ordering_by_counter_then_writer(self):
        assert Timestamp(1, "a") < Timestamp(2, "a")
        assert Timestamp(1, "a") < Timestamp(1, "b")
        assert Timestamp.zero() < Timestamp(1, "")


class TestConstruction:
    def test_requires_two_replicas(self):
        sim = Simulator()
        net = Network(sim, paper_latency_table(), RandomStreams(5))
        with pytest.raises(ValueError):
            ReplicatedStore(sim, net, [Region.VA])

    def test_majority_size(self, world):
        _sim, _net, store = world
        assert store.majority == 2

    def test_client_picks_nearest_coordinator(self, world):
        sim, _net, store = world
        client = store.client(Region.CA, "c-ca")
        assert client.coordinator == Region.OR  # CA<->OR is 22ms, nearest
        client2 = store.client(Region.IE, "c-ie")
        assert client2.coordinator == Region.VA


class TestReadWrite:
    def test_write_then_read_roundtrip(self, world):
        sim, _net, store = world
        client = store.client(Region.VA, "c1")

        def flow():
            yield from client.write("users", "alice", {"n": 1})
            value = yield from client.read("users", "alice")
            return value

        assert sim.run_process(flow()) == {"n": 1}

    def test_read_of_missing_key_returns_none(self, world):
        sim, _net, store = world
        client = store.client(Region.VA, "c1")

        def flow():
            value = yield from client.read("users", "ghost")
            return value

        assert sim.run_process(flow()) is None

    def test_cross_region_visibility(self, world):
        # A write from CA must be visible to a subsequent read from JP:
        # that is the strong consistency the baseline pays latency for.
        sim, _net, store = world
        writer = store.client(Region.CA, "w")
        reader = store.client(Region.JP, "r")

        def flow():
            yield from writer.write("t", "k", "from-ca")
            value = yield from reader.read("t", "k")
            return value

        assert sim.run_process(flow()) == "from-ca"

    def test_last_writer_wins_ordering(self, world):
        sim, _net, store = world
        c1 = store.client(Region.VA, "c1")
        c2 = store.client(Region.CA, "c2")

        def flow():
            yield from c1.write("t", "k", "first")
            yield from c2.write("t", "k", "second")
            value = yield from c1.read("t", "k")
            return value

        assert sim.run_process(flow()) == "second"

    def test_write_reaches_quorum_of_replicas(self, world):
        sim, _net, store = world
        client = store.client(Region.VA, "c1")

        def flow():
            yield from client.write("t", "k", "v")

        sim.run_process(flow())
        sim.run()
        holders = sum(1 for r in store.regions if store.peek(r, "t/k") == "v")
        assert holders >= store.majority


class TestLatencyShape:
    def _timed(self, sim, gen):
        def wrapper():
            start = sim.now
            yield from gen
            return sim.now - start

        return sim.run_process(wrapper())

    def test_read_pays_two_quorum_phases(self, world):
        # From VA: coordinator VA, nearest peer OH (11ms RTT), service 1ms.
        # Two phases => 2 * (11 + max(service)) + client hop 7 + ...
        sim, _net, store = world
        client = store.client(Region.VA, "c1")
        latency = self._timed(sim, client.read("t", "k"))
        # Lower bound: client->coord RTT (7) + 2 quorum phases (>= 2*11).
        assert latency >= 7 + 2 * 11
        # And it is far above a simple local access.
        assert latency > 25

    def test_strong_access_slower_than_centralized_for_far_users(self, world):
        # The Figure-1 argument: for a JP user, a geo-replicated strong
        # read is NOT cheaper than just asking Virginia directly.
        sim, net, store = world
        client = store.client(Region.JP, "c-jp")
        latency = self._timed(sim, client.read("t", "k"))
        centralized = net.latency.rtt(Region.JP, Region.VA)
        assert latency + 1e-9 >= min(centralized, latency)  # sanity
        # JP's nearest replica is OR (90ms RTT); two quorum phases from OR
        # (OR<->VA 60 or OR<->OH 50) push it past the direct 146ms hop.
        assert latency > 146
