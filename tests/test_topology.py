"""Topology layer: shard maps, the Deployment builder, and the guarantee
that one shard *is* the seed topology — virtual-time identical."""

import pytest

from conftest import build_counter_deployment
from repro.apps import social_media_app
from repro.bench import ExperimentConfig, run_radical_experiment
from repro.core import FunctionRegistry, LVIServer, NearUserRuntime, RadicalConfig
from repro.obs import TraceCollector
from repro.sim import Metrics, Network, RandomStreams, Region, Simulator, paper_latency_table
from repro.storage import KVStore, NearUserCache
from repro.topology import (
    Deployment,
    HashShardMap,
    RangeShardMap,
    ShardRouter,
    TopologySpec,
)
from repro.workloads import ClosedLoopClient, run_clients


class TestHashShardMap:
    def test_deterministic_and_in_range(self):
        m = HashShardMap(8)
        for i in range(200):
            s = m.shard_of("counters", f"c:{i}")
            assert 0 <= s < 8
            assert s == m.shard_of("counters", f"c:{i}")

    def test_single_shard_maps_everything_to_zero(self):
        m = HashShardMap(1)
        assert {m.shard_of("t", f"k{i}") for i in range(50)} == {0}

    def test_covers_every_shard(self):
        m = HashShardMap(4)
        hit = {m.shard_of("counters", f"c:{i}") for i in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_table_is_part_of_the_key(self):
        m = HashShardMap(16)
        placements = {m.shard_of(t, "k") for t in ("a", "b", "c", "d", "e")}
        assert len(placements) > 1  # same key, different tables, spread out

    def test_split_groups_preserve_order(self):
        m = HashShardMap(2)
        keys = [("t", f"k{i}") for i in range(10)]
        groups = m.split(keys)
        assert sorted(k for g in groups.values() for k in g) == sorted(keys)
        for shard, group in groups.items():
            assert group == [k for k in keys if m.shard_of(*k) == shard]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            HashShardMap(0)


class TestRangeShardMap:
    def test_boundary_placement(self):
        m = RangeShardMap([("counters", "c:m")])
        assert m.nshards == 2
        assert m.shard_of("counters", "c:a") == 0
        assert m.shard_of("counters", "c:m") == 1  # boundary goes right
        assert m.shard_of("counters", "c:z") == 1
        assert m.shard_of("a", "anything") == 0
        assert m.shard_of("z", "anything") == 1

    def test_multiple_boundaries(self):
        m = RangeShardMap([("t", "h"), ("t", "p")])
        assert m.nshards == 3
        assert [m.shard_of("t", k) for k in ("a", "h", "o", "p", "z")] == [0, 1, 1, 2, 2]

    def test_rejects_unsorted_or_duplicate_boundaries(self):
        with pytest.raises(ValueError):
            RangeShardMap([("t", "p"), ("t", "h")])
        with pytest.raises(ValueError):
            RangeShardMap([("t", "h"), ("t", "h")])


class TestShardRouter:
    def test_endpoint_mapping(self):
        r = ShardRouter(RangeShardMap([("t", "m")]), ["lvi-server", "lvi-server-1"])
        assert r.nshards == 2
        assert r.endpoint(r.shard_of("t", "a")) == "lvi-server"
        assert r.endpoint(r.shard_of("t", "z")) == "lvi-server-1"

    def test_rejects_endpoint_count_mismatch(self):
        with pytest.raises(ValueError):
            ShardRouter(HashShardMap(2), ["only-one"])


class TestTopologySpec:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            TopologySpec(shards=0).validate()

    def test_replicated_is_single_shard_only(self):
        spec = TopologySpec(shards=2, config=RadicalConfig(replicated=True))
        with pytest.raises(ValueError):
            spec.validate()

    def test_shard_map_must_match_shard_count(self):
        spec = TopologySpec(shards=3, shard_map=HashShardMap(2))
        with pytest.raises(ValueError):
            spec.validate()

    def test_explicit_shard_map_is_used(self):
        dep = build_counter_deployment(
            shards=2, shard_map=RangeShardMap([("counters", "c:m")])
        )
        assert dep.shard_of("counters", "c:a") == 0
        assert dep.shard_of("counters", "c:z") == 1


class TestDeployment:
    def test_app_and_functions_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Deployment.build(
                TopologySpec(), app=social_media_app(), functions=[object()]
            )

    def test_single_shard_shape_matches_seed(self):
        dep = build_counter_deployment()
        assert dep.nshards == 1
        assert dep.server.name == "lvi-server"
        assert dep.store.name == "primary"
        assert dep.router is None
        assert set(dep.runtimes) == {Region.JP, Region.CA}
        assert dep.fault_targets() == {"lvi-server": dep.server}

    def test_sharded_shape(self):
        dep = build_counter_deployment(shards=3)
        assert [s.name for s in dep.servers] == [
            "lvi-server", "lvi-server-1", "lvi-server-2"
        ]
        assert [s.shard for s in dep.servers] == [0, 1, 2]
        assert dep.router is not None
        assert dep.router.endpoints == ("lvi-server", "lvi-server-1", "lvi-server-2")
        # Each server owns a distinct store; every runtime shares the router.
        assert len({id(s.store) for s in dep.servers}) == 3
        for runtime in dep.runtimes.values():
            assert runtime.router is dep.router

    def test_seed_data_lands_on_the_owning_shard(self):
        dep = build_counter_deployment(
            shards=2, shard_map=RangeShardMap([("counters", "c:m")])
        )
        # conftest seeds c:x, which sorts above c:m -> shard 1.
        assert dep.stores[1].get_or_none("counters", "c:x") is not None
        assert dep.stores[0].get_or_none("counters", "c:x") is None
        assert dep.get_or_none("counters", "c:x").value == 0
        assert dep.store_for("counters", "c:x") is dep.stores[1]

    def test_warm_caches_cover_every_shard(self):
        dep = build_counter_deployment(
            shards=2, shard_map=RangeShardMap([("counters", "c:m")])
        )
        for cache in dep.caches.values():
            assert cache.contains("counters", "c:x")


class TestSingleShardIsTheSeed:
    """A 1-shard Deployment must reproduce the pre-topology hand-rolled
    stack *exactly*: same virtual timeline, same spans, same validation
    counts, on the fig4 social workload."""

    REQUESTS = 250
    SEED = 11

    def _hand_rolled(self):
        """The construction run_radical_experiment used before the
        topology layer existed, inlined verbatim."""
        app = social_media_app()
        cfg = ExperimentConfig(requests=self.REQUESTS, seed=self.SEED, trace=True)
        sim = Simulator()
        sim.obs = trace = TraceCollector(sim)
        streams = RandomStreams(cfg.seed)
        net = Network(sim, paper_latency_table(), streams,
                      jitter_sigma=cfg.network_jitter_sigma)
        metrics = Metrics()
        registry = FunctionRegistry()
        registry.register_all(app.specs())
        store = KVStore()
        app.seed(store, streams, app.context)
        LVIServer(sim, net, registry, store, cfg.radical, streams, metrics)
        clients = []
        for region in cfg.regions:
            cache = NearUserCache(region, persistent=True)
            for table in store.table_names():
                if table.startswith("_radical"):
                    continue
                for key, item in store.scan(table):
                    cache.install(table, key, item)
            runtime = NearUserRuntime(
                sim, net, region, cache, registry, cfg.radical, streams, metrics
            )
            for i in range(cfg.clients_per_region):
                clients.append(
                    ClosedLoopClient(
                        sim=sim, app=app, region=region, invoke=runtime.invoke,
                        metrics=metrics,
                        rng=streams.fork(f"client.{region}.{i}").stream("workload"),
                        requests=cfg.per_client_requests(),
                        client_app_rtt_ms=cfg.radical.client_app_rtt_ms,
                        history=None,
                    )
                )
        run_clients(sim, clients)
        return sim, metrics, trace

    def test_fig4_social_is_virtual_time_identical(self):
        cfg = ExperimentConfig(requests=self.REQUESTS, seed=self.SEED, trace=True)
        via_topology = run_radical_experiment(social_media_app(), cfg)
        sim, metrics, trace = self._hand_rolled()

        s_new = via_topology.metrics.summary("e2e")
        s_old = metrics.summary("e2e")
        assert s_new.count == s_old.count
        assert s_new.median == s_old.median
        assert s_new.p99 == s_old.p99
        assert via_topology.virtual_time_ms == sim.now
        assert len(via_topology.trace.spans) == len(trace.spans)
        for counter in ("validation.success", "validation.failure",
                        "path.speculative", "path.direct"):
            assert via_topology.metrics.counter(counter) == metrics.counter(counter)
        for region in cfg.regions:
            assert (via_topology.metrics.summary(f"e2e.region.{region}").median
                    == metrics.summary(f"e2e.region.{region}").median)
