"""Tests for the wasm-lite compiler: subset enforcement and codegen."""

import pytest

from repro.errors import CompileError, NonDeterminismError
from repro.wasm import Op, compile_source


def run(source, args, data=None):
    """Compile and execute, returning the result (helper)."""
    from repro.wasm import DictEnv, VM

    fn = compile_source(source)
    return VM(DictEnv(data or {})).execute(fn, args).result


class TestStructure:
    def test_requires_single_function(self):
        with pytest.raises(CompileError):
            compile_source("x = 1")
        with pytest.raises(CompileError):
            compile_source("def a():\n    pass\n\ndef b():\n    pass")

    def test_syntax_error_wrapped(self):
        with pytest.raises(CompileError, match="syntax"):
            compile_source("def broken(:\n    pass")

    def test_params_extracted(self):
        fn = compile_source("def f(a, b, c):\n    return a")
        assert fn.params == ["a", "b", "c"]

    def test_default_args_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f(a=1):\n    return a")

    def test_varargs_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f(*args):\n    return 0")

    def test_dedent_applied(self):
        fn = compile_source(
            """
            def f(x):
                return x + 1
            """
        )
        assert fn.name == "f"


class TestDeterminismContract:
    def test_banned_intrinsic_call_rejected(self):
        with pytest.raises(NonDeterminismError):
            compile_source("def f():\n    return now()")

    def test_banned_intrinsic_reference_rejected(self):
        with pytest.raises(NonDeterminismError):
            compile_source("def f():\n    x = random_int\n    return 0")

    def test_uuid_rejected(self):
        with pytest.raises(NonDeterminismError):
            compile_source("def f():\n    return uuid()")

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("def f():\n    return open('x')")

    def test_attribute_access_rejected(self):
        with pytest.raises(CompileError, match="attribute"):
            compile_source("def f(x):\n    return x.field")

    def test_unwhitelisted_method_rejected(self):
        with pytest.raises(CompileError, match="whitelisted"):
            compile_source("def f(x):\n    return x.clear()")

    def test_import_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f():\n    import os\n    return 0")

    def test_keyword_args_rejected(self):
        with pytest.raises(CompileError, match="keyword"):
            compile_source("def f(x):\n    return sorted(x, reverse=True)")

    def test_lambda_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f():\n    g = lambda: 0\n    return 0")

    def test_chained_comparison_rejected(self):
        with pytest.raises(CompileError, match="chained"):
            compile_source("def f(a, b, c):\n    return a < b < c")

    def test_deterministic_intrinsic_allowed(self):
        fn = compile_source("def f(x):\n    return digest(x)")
        assert any(i.op == Op.INTRINSIC for i in fn.instructions)


class TestStorageOpcodes:
    def test_db_get_compiles_to_opcode(self):
        fn = compile_source('def f(k):\n    return db_get("t", k)')
        assert [op for _pc, op in fn.storage_opcodes()] == [Op.DB_GET]

    def test_db_put_compiles_to_opcode(self):
        fn = compile_source('def f(k, v):\n    db_put("t", k, v)')
        assert fn.may_write()

    def test_db_get_arity_checked(self):
        with pytest.raises(CompileError, match="exactly 2"):
            compile_source('def f(k):\n    return db_get("t")')

    def test_db_put_arity_checked(self):
        with pytest.raises(CompileError, match="exactly 3"):
            compile_source('def f(k):\n    db_put("t", k)')

    def test_pure_function_has_no_storage_ops(self):
        fn = compile_source("def f(x):\n    return x * 2")
        assert fn.storage_opcodes() == []
        assert not fn.may_write()


class TestExpressions:
    def test_arithmetic(self):
        assert run("def f(a, b):\n    return (a + b) * 2 - a // b % 3", [7, 2]) == 18

    def test_power_and_division(self):
        assert run("def f(a):\n    return a ** 2 / 4", [6]) == 9.0

    def test_unary(self):
        assert run("def f(a):\n    return -a + (not a)", [5]) == -5

    def test_comparisons(self):
        assert run("def f(a, b):\n    return a <= b", [1, 2]) is True
        assert run('def f(x):\n    return "a" in x', ["cat"]) is True
        assert run("def f(x):\n    return x is None", [None]) is True

    def test_boolop_short_circuit_and(self):
        # If `and` did not short-circuit, indexing [] would trap.
        src = "def f(lst):\n    return len(lst) > 0 and lst[0] == 1"
        assert run(src, [[]]) is False
        assert run(src, [[1]]) is True

    def test_boolop_short_circuit_or(self):
        src = "def f(d):\n    return d.get(\"x\") or 99"
        assert run(src, [{}]) == 99
        assert run(src, [{"x": 5}]) == 5

    def test_ternary(self):
        assert run("def f(a):\n    return 'big' if a > 10 else 'small'", [11]) == "big"

    def test_fstring(self):
        assert run('def f(u, n):\n    return f"user:{u}:{n + 1}"', ["bob", 1]) == "user:bob:2"

    def test_fstring_format_spec_rejected(self):
        with pytest.raises(CompileError):
            compile_source('def f(x):\n    return f"{x:>10}"')

    def test_collections_literals(self):
        assert run("def f():\n    return [1, 2] + [3]", []) == [1, 2, 3]
        assert run("def f():\n    return {'a': 1, 'b': 2}", []) == {"a": 1, "b": 2}
        assert run("def f():\n    return (1, 2)", []) == (1, 2)

    def test_subscript_and_slice(self):
        assert run("def f(x):\n    return x[1]", [[10, 20, 30]]) == 20
        assert run("def f(x):\n    return x[1:3]", [[0, 1, 2, 3]]) == [1, 2]
        assert run("def f(x):\n    return x[:2]", ["hello"]) == "he"

    def test_slice_step_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f(x):\n    return x[::2]")


class TestStatements:
    def test_if_elif_else(self):
        src = """
def f(x):
    if x > 10:
        return "big"
    elif x > 5:
        return "mid"
    else:
        return "small"
"""
        assert run(src, [20]) == "big"
        assert run(src, [7]) == "mid"
        assert run(src, [1]) == "small"

    def test_while_loop(self):
        src = """
def f(n):
    total = 0
    i = 0
    while i < n:
        total = total + i
        i += 1
    return total
"""
        assert run(src, [5]) == 10

    def test_for_over_range(self):
        src = """
def f(n):
    acc = []
    for i in range(n):
        acc.append(i * i)
    return acc
"""
        assert run(src, [4]) == [0, 1, 4, 9]

    def test_for_over_list_with_break_continue(self):
        src = """
def f(items):
    out = []
    for x in items:
        if x < 0:
            continue
        if x > 100:
            break
        out.append(x)
    return out
"""
        assert run(src, [[1, -5, 2, 300, 9]]) == [1, 2]

    def test_nested_loops(self):
        src = """
def f(n):
    total = 0
    for i in range(n):
        for j in range(i):
            total += 1
    return total
"""
        assert run(src, [4]) == 6

    def test_subscript_assignment(self):
        src = """
def f(d):
    d["k"] = 42
    return d
"""
        assert run(src, [{}]) == {"k": 42}

    def test_implicit_return_none(self):
        assert run("def f():\n    x = 1", []) is None

    def test_augassign_on_subscript_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f(d):\n    d['k'] += 1")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f():\n    break")

    def test_while_else_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f():\n    while True:\n        break\n    else:\n        pass")

    def test_try_rejected(self):
        with pytest.raises(CompileError):
            compile_source("def f():\n    try:\n        pass\n    except:\n        pass")


class TestDisassembly:
    def test_disassemble_is_readable(self):
        fn = compile_source("def f(x):\n    return x + 1")
        text = fn.disassemble()
        assert "func f(x)" in text
        assert "binop" in text
