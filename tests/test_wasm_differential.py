"""Differential testing: the VM must agree with CPython on the subset.

Hypothesis generates random programs in (a fragment of) the supported
subset; each is executed both by the wasm-lite pipeline and by CPython
``exec``.  Agreement on results — or agreement on *failing* — is the
determinism foundation the protocol's re-execution relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VMError
from repro.wasm import DictEnv, VM, compile_source


def run_both(source, args):
    """Execute via the VM and via CPython; return (vm_result, py_result),
    where either may be the string '<error>' if that side raised."""
    try:
        fn = compile_source(source)
        vm_result = VM(DictEnv()).execute(fn, list(args)).result
    except VMError:
        vm_result = "<error>"
    namespace = {}
    exec(source, {"__builtins__": {
        "len": len, "str": str, "int": int, "float": float, "bool": bool,
        "abs": abs, "min": min, "max": max, "sum": sum, "sorted": sorted,
        "range": range, "round": round, "list": list, "dict": dict,
    }}, namespace)
    py_fn = next(v for v in namespace.values() if callable(v))
    try:
        py_result = py_fn(*args)
    except Exception:
        py_result = "<error>"
    return vm_result, py_result


# -- generators --------------------------------------------------------------

_int = st.integers(min_value=-50, max_value=50)
_small = st.integers(min_value=1, max_value=8)

_binops = st.sampled_from(["+", "-", "*", "//", "%"])
_cmps = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])


@st.composite
def arith_expr(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", str(draw(_int))]))
    left = draw(arith_expr(depth=depth + 1))
    right = draw(arith_expr(depth=depth + 1))
    op = draw(_binops)
    return f"({left} {op} {right})"


@st.composite
def program(draw):
    lines = ["def f(a, b):"]
    n_stmts = draw(st.integers(min_value=1, max_value=4))
    names = ["a", "b"]
    for i in range(n_stmts):
        name = f"v{i}"
        expr = draw(arith_expr())
        lines.append(f"    {name} = {expr}")
        names.append(name)
    cond_left = draw(st.sampled_from(names))
    cond_right = draw(st.sampled_from(names))
    cmp_op = draw(_cmps)
    ret_a = draw(st.sampled_from(names))
    ret_b = draw(st.sampled_from(names))
    lines.append(f"    if {cond_left} {cmp_op} {cond_right}:")
    lines.append(f"        return {ret_a}")
    lines.append(f"    return {ret_b} * 2")
    return "\n".join(lines)


class TestDifferentialArithmetic:
    @given(source=program(), a=_int, b=_int)
    @settings(max_examples=150, deadline=None)
    def test_property_vm_agrees_with_cpython(self, source, a, b):
        vm_result, py_result = run_both(source, [a, b])
        assert vm_result == py_result

    @given(a=_int, b=_int, n=_small)
    @settings(max_examples=60, deadline=None)
    def test_property_loops_agree(self, a, b, n):
        source = f"""
def f(a, b):
    total = 0
    for i in range({n}):
        total = total + a * i - b
    return total
"""
        vm_result, py_result = run_both(source, [a, b])
        assert vm_result == py_result

    @given(values=st.lists(_int, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_property_list_ops_agree(self, values):
        source = """
def f(a, b):
    xs = a
    xs.sort()
    out = []
    for x in xs:
        if x >= b:
            out.append(x)
    return [len(out), sum(out), out[:3]]
"""
        vm_result, py_result = run_both(source, [list(values), 0])
        assert vm_result == py_result

    @given(s=st.text(alphabet="abc:XYZ", min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property_string_ops_agree(self, s):
        source = """
def f(a, b):
    parts = a.split(":")
    joined = "-".join(parts)
    return [len(parts), joined.lower(), joined.startswith("a")]
"""
        vm_result, py_result = run_both(source, [s, 0])
        assert vm_result == py_result

    @given(a=_int, b=_int)
    @settings(max_examples=60, deadline=None)
    def test_property_fstrings_agree(self, a, b):
        source = """
def f(a, b):
    return f"k:{a}:{a + b}:{a > b}"
"""
        vm_result, py_result = run_both(source, [a, b])
        assert vm_result == py_result

    @given(a=_int)
    @settings(max_examples=40, deadline=None)
    def test_property_while_agrees(self, a):
        source = """
def f(a, b):
    i = 0
    acc = []
    while i < 5:
        if i == a:
            i += 2
            continue
        acc.append(i)
        i += 1
    return acc
"""
        vm_result, py_result = run_both(source, [a, 0])
        assert vm_result == py_result


class TestDifferentialDicts:
    @given(keys=st.lists(st.sampled_from("pqrs"), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_property_dict_ops_agree(self, keys):
        source = """
def f(a, b):
    counts = {}
    for k in a:
        prev = counts.get(k, 0)
        counts[k] = prev + 1
    return [counts, sorted(counts.keys()), len(counts.values())]
"""
        vm_result, py_result = run_both(source, [list(keys), 0])
        assert vm_result == py_result
