"""Coverage for the full whitelisted method and builtin surface of the VM."""

import pytest

from repro.errors import VMTrap
from repro.wasm import DictEnv, VM, compile_source


def run(source, args):
    fn = compile_source(source)
    return VM(DictEnv()).execute(fn, list(args)).result


class TestListMethods:
    def test_pop_default_and_indexed(self):
        assert run("def f(x):\n    return [x.pop(), x]", [[1, 2, 3]]) == [3, [1, 2]]
        assert run("def f(x):\n    return [x.pop(0), x]", [[1, 2, 3]]) == [1, [2, 3]]

    def test_pop_empty_traps(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    return x.pop()", [[]])

    def test_insert(self):
        assert run("def f(x):\n    x.insert(1, 99)\n    return x", [[1, 2]]) == [1, 99, 2]

    def test_remove(self):
        assert run("def f(x):\n    x.remove(2)\n    return x", [[1, 2, 3]]) == [1, 3]

    def test_remove_missing_traps(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    x.remove(9)", [[1]])

    def test_index_and_count(self):
        assert run("def f(x):\n    return [x.index(2), x.count(2)]", [[1, 2, 2]]) == [1, 2]

    def test_index_missing_traps(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    return x.index(9)", [[1]])

    def test_extend(self):
        assert run("def f(x):\n    x.extend([4, 5])\n    return x", [[1]]) == [1, 4, 5]

    def test_copy_is_shallow_but_new(self):
        src = """
def f(x):
    y = x.copy()
    y.append(99)
    return [x, y]
"""
        assert run(src, [[1]]) == [[1], [1, 99]]

    def test_sort_with_mixed_types_traps(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    x.sort()\n    return x", [[1, "a"]])


class TestDictMethods:
    def test_get_with_and_without_default(self):
        src = "def f(d):\n    return [d.get('a'), d.get('z'), d.get('z', 9)]"
        assert run(src, [{"a": 1}]) == [1, None, 9]

    def test_setdefault(self):
        src = """
def f(d):
    first = d.setdefault("k", [])
    first.append(1)
    return d
"""
        assert run(src, [{}]) == {"k": [1]}

    def test_pop_with_default(self):
        assert run("def f(d):\n    return [d.pop('a'), d]", [{"a": 1}]) == [1, {}]
        assert run("def f(d):\n    return d.pop('z', 7)", [{}]) == 7

    def test_pop_missing_traps(self):
        with pytest.raises(VMTrap):
            run("def f(d):\n    return d.pop('z')", [{}])

    def test_copy(self):
        src = """
def f(d):
    c = d.copy()
    c["new"] = 1
    return [d, c]
"""
        assert run(src, [{"a": 1}]) == [{"a": 1}, {"a": 1, "new": 1}]


class TestStringMethods:
    def test_replace(self):
        assert run("def f(s):\n    return s.replace('a', 'o')", ["banana"]) == "bonono"

    def test_find_present_and_absent(self):
        assert run("def f(s):\n    return [s.find('n'), s.find('z')]", ["banana"]) == [2, -1]

    def test_zfill(self):
        assert run("def f(s):\n    return s.zfill(5)", ["42"]) == "00042"

    def test_strip(self):
        assert run("def f(s):\n    return s.strip()", ["  hi  "]) == "hi"

    def test_endswith(self):
        assert run("def f(s):\n    return s.endswith('.txt')", ["a.txt"]) is True

    def test_count_and_index(self):
        assert run("def f(s):\n    return [s.count('a'), s.index('n')]", ["banana"]) == [3, 2]

    def test_upper(self):
        assert run("def f(s):\n    return s.upper()", ["abc"]) == "ABC"

    def test_split_with_no_args_rejected_at_runtime(self):
        # split() with no separator is whitespace split — allowed.
        assert run("def f(s):\n    return s.split()", ["a b  c"]) == ["a", "b", "c"]

    def test_join_requires_string_elements(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    return ','.join(x)", [[1, 2]])


class TestBuiltinEdges:
    def test_int_of_bad_string_traps(self):
        with pytest.raises(VMTrap):
            run("def f(s):\n    return int(s)", ["not-a-number"])

    def test_min_empty_traps(self):
        with pytest.raises(VMTrap):
            run("def f(x):\n    return min(x)", [[]])

    def test_round_with_digits(self):
        assert run("def f(x):\n    return round(x, 2)", [3.14159]) == 3.14

    def test_range_three_args(self):
        assert run("def f():\n    return range(10, 0, -3)", []) == [10, 7, 4, 1]

    def test_dict_from_pairs(self):
        assert run("def f(p):\n    return dict(p)", [[("a", 1), ("b", 2)]]) == {"a": 1, "b": 2}

    def test_list_of_string_chars(self):
        assert run("def f(s):\n    return list(s)", ["abc"]) == ["a", "b", "c"]

    def test_bool_of_collections(self):
        assert run("def f():\n    return [bool([]), bool([0]), bool(''), bool('x')]", []) == [
            False, True, False, True,
        ]

    def test_sum_of_floats(self):
        assert run("def f(x):\n    return sum(x)", [[0.5, 0.25]]) == 0.75

    def test_abs_and_negative_floor_div(self):
        assert run("def f(a, b):\n    return [abs(a), a // b]", [-7, 2]) == [7, -4]

    def test_busy_returns_none_and_burns_gas(self):
        fn = compile_source("def f():\n    return busy(5000)")
        trace = VM(DictEnv()).execute(fn, [])
        assert trace.result is None
        assert trace.gas_used > 5000

    def test_busy_negative_traps(self):
        with pytest.raises(VMTrap):
            run("def f():\n    busy(-1)", [])
