"""Tests for the VM: semantics, traps, gas, determinism, interposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GasExhausted, VMTrap
from repro.wasm import DictEnv, VM, compile_source


def execute(source, args, data=None, gas_limit=2_000_000):
    fn = compile_source(source)
    env = DictEnv(data or {})
    return VM(env, gas_limit=gas_limit).execute(fn, args), env


class TestStorageInterposition:
    def test_reads_recorded_in_order(self):
        src = """
def f(a, b):
    x = db_get("t", a)
    y = db_get("t", b)
    return [x, y]
"""
        trace, _env = execute(src, ["k1", "k2"], {("t", "k1"): 1, ("t", "k2"): 2})
        assert trace.reads == [("t", "k1"), ("t", "k2")]
        assert trace.result == [1, 2]

    def test_missing_key_reads_none(self):
        trace, _env = execute('def f():\n    return db_get("t", "nope")', [])
        assert trace.result is None

    def test_writes_recorded_with_values(self):
        src = 'def f(k, v):\n    db_put("t", k, v)'
        trace, env = execute(src, ["key", {"x": 1}])
        assert trace.writes == [("t", "key", {"x": 1})]
        assert env.data[("t", "key")] == {"x": 1}

    def test_read_your_own_write(self):
        src = """
def f(k):
    db_put("t", k, 7)
    return db_get("t", k)
"""
        trace, _env = execute(src, ["k"])
        assert trace.result == 7

    def test_non_string_key_traps(self):
        with pytest.raises(VMTrap, match="strings"):
            execute('def f(k):\n    return db_get("t", k)', [42])

    def test_duplicate_reads_both_recorded(self):
        src = """
def f(k):
    a = db_get("t", k)
    b = db_get("t", k)
    return 0
"""
        trace, _env = execute(src, ["k"])
        assert len(trace.reads) == 2


class TestTraps:
    def test_unbound_variable(self):
        with pytest.raises(VMTrap, match="unbound"):
            execute("def f():\n    return missing_var", [])

    def test_division_by_zero(self):
        with pytest.raises(VMTrap):
            execute("def f(a):\n    return a / 0", [1])

    def test_bad_index(self):
        with pytest.raises(VMTrap, match="index"):
            execute("def f(x):\n    return x[10]", [[1]])

    def test_missing_dict_key(self):
        with pytest.raises(VMTrap):
            execute("def f(d):\n    return d['nope']", [{}])

    def test_wrong_arity(self):
        fn = compile_source("def f(a, b):\n    return a")
        with pytest.raises(VMTrap, match="arguments"):
            VM(DictEnv()).execute(fn, [1])

    def test_method_on_wrong_type(self):
        with pytest.raises(VMTrap):
            execute("def f(x):\n    return x.append(1)", [42])

    def test_adding_list_and_int_traps(self):
        with pytest.raises(VMTrap):
            execute("def f(x):\n    return x + 1", [[1]])

    def test_none_comparison_traps_on_order(self):
        with pytest.raises(VMTrap):
            execute("def f(x):\n    return x < 1", [None])


class TestGas:
    def test_infinite_loop_exhausts_gas(self):
        with pytest.raises(GasExhausted):
            execute("def f():\n    while True:\n        pass", [], gas_limit=10_000)

    def test_gas_counts_instructions(self):
        trace, _env = execute("def f():\n    return 1", [])
        assert trace.gas_used >= 2  # PUSH + RETURN

    def test_intrinsic_cost_charged(self):
        cheap, _ = execute("def f(x):\n    return digest(x)", ["a"])
        heavy, _ = execute("def f(x):\n    return pbkdf2_hash(x, 's')", ["a"])
        assert heavy.gas_used > cheap.gas_used + 10_000

    def test_range_charges_by_length(self):
        small, _ = execute("def f():\n    x = range(10)\n    return 0", [])
        big, _ = execute("def f():\n    x = range(1000)\n    return 0", [])
        assert big.gas_used > small.gas_used + 900


class TestBuiltinsAndMethods:
    def test_len_str_int(self):
        trace, _ = execute("def f(x):\n    return [len(x), str(7), int('3')]", [[1, 2]])
        assert trace.result == [2, "7", 3]

    def test_min_max_sum_sorted(self):
        src = "def f(x):\n    return [min(x), max(x), sum(x), sorted(x)]"
        trace, _ = execute(src, [[3, 1, 2]])
        assert trace.result == [1, 3, 6, [1, 2, 3]]

    def test_min_of_two_scalars(self):
        trace, _ = execute("def f(a, b):\n    return min(a, b)", [4, 9])
        assert trace.result == 4

    def test_list_of_dict_returns_keys(self):
        trace, _ = execute("def f(d):\n    return list(d)", [{"a": 1, "b": 2}])
        assert trace.result == ["a", "b"]

    def test_dict_methods(self):
        src = """
def f(d):
    ks = d.keys()
    vs = d.values()
    return [ks, vs, d.get("missing", 9)]
"""
        trace, _ = execute(src, [{"a": 1}])
        assert trace.result == [["a"], [1], 9]

    def test_dict_items_as_lists(self):
        trace, _ = execute("def f(d):\n    return d.items()", [{"a": 1}])
        assert trace.result == [["a", 1]]

    def test_str_methods(self):
        src = """
def f(s):
    return [s.lower(), s.split(":"), s.startswith("A"), s.zfill(6)]
"""
        trace, _ = execute(src, ["A:b"])
        assert trace.result == ["a:b", ["A", "b"], True, "000A:b"]

    def test_join(self):
        trace, _ = execute('def f(parts):\n    return ",".join(parts)', [["a", "b"]])
        assert trace.result == "a,b"

    def test_list_mutators(self):
        src = """
def f():
    x = [3, 1]
    x.append(2)
    x.sort()
    x.reverse()
    return x
"""
        trace, _ = execute(src, [])
        assert trace.result == [3, 2, 1]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        src = """
def f(seed):
    acc = []
    for i in range(10):
        acc.append(score_text(f"{seed}:{i}"))
    db_put("t", f"out:{seed}", acc)
    return acc
"""
        t1, e1 = execute(src, ["x"])
        t2, e2 = execute(src, ["x"])
        assert t1.result == t2.result
        assert t1.writes == t2.writes
        assert t1.gas_used == t2.gas_used
        assert e1.data == e2.data

    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_replay_equivalence(self, a, b):
        # The deterministic re-execution guarantee (§3.4): same inputs and
        # same storage responses => byte-identical writes and result.
        src = """
def f(a, b):
    x = a % b
    y = a // b
    db_put("out", f"r:{a}:{b}", [x, y, x * y])
    return x + y
"""
        t1, e1 = execute(src, [a, b])
        t2, e2 = execute(src, [a, b])
        assert t1.result == t2.result
        assert e1.data == e2.data

    def test_dict_iteration_order_is_insertion_order(self):
        src = """
def f():
    d = {}
    d["b"] = 1
    d["a"] = 2
    return d.keys()
"""
        trace, _ = execute(src, [])
        assert trace.result == ["b", "a"]
