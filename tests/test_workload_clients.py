"""Direct tests for the workload clients (closed- and open-loop)."""

import pytest

from repro.apps import social_media_app
from repro.consistency import HistoryRecorder
from repro.sim import Metrics, RandomStreams, Simulator
from repro.workloads import ClosedLoopClient, OpenLoopClient, run_clients


def make_invoker(sim, latency_ms=10.0):
    """A stub deployment: fixed-latency invocations with dummy outcomes."""
    calls = []

    class Outcome:
        result = "ok"
        path = "stub"
        read_versions = {("t", "k"): 1}
        write_versions = {}

    def invoke(function_id, args):
        def flow():
            calls.append((function_id, list(args)))
            yield sim.timeout(latency_ms)
            return Outcome()

        return flow()

    return invoke, calls


class TestClosedLoop:
    def test_issues_exact_request_count(self):
        sim = Simulator()
        metrics = Metrics()
        invoke, calls = make_invoker(sim)
        client = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(1).stream("w"), requests=25,
        )
        run_clients(sim, [client])
        assert len(calls) == 25
        assert metrics.counter("requests.total") == 25

    def test_latency_includes_client_hop(self):
        sim = Simulator()
        metrics = Metrics()
        invoke, _calls = make_invoker(sim, latency_ms=10.0)
        client = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(1).stream("w"), requests=5,
            client_app_rtt_ms=4.0,
        )
        run_clients(sim, [client])
        assert metrics.summary("e2e").median == pytest.approx(14.0)

    def test_per_region_and_per_function_labels(self):
        sim = Simulator()
        metrics = Metrics()
        invoke, calls = make_invoker(sim)
        client = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="de", invoke=invoke,
            metrics=metrics, rng=RandomStreams(2).stream("w"), requests=40,
        )
        run_clients(sim, [client])
        assert metrics.summary("e2e.region.de").count == 40
        assert metrics.has("e2e.fn.social.timeline")

    def test_history_recorded_when_provided(self):
        sim = Simulator()
        metrics = Metrics()
        history = HistoryRecorder()
        invoke, _calls = make_invoker(sim)
        client = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(1).stream("w"), requests=7,
            history=history,
        )
        run_clients(sim, [client])
        assert len(history) == 7
        assert all(r.responded_at > r.invoked_at for r in history.records())

    def test_think_time_spaces_requests(self):
        sim = Simulator()
        fast_metrics, slow_metrics = Metrics(), Metrics()
        invoke, _ = make_invoker(sim)
        fast = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=fast_metrics, rng=RandomStreams(1).stream("w"), requests=10,
        )
        run_clients(sim, [fast])
        t_fast = sim.now
        sim2 = Simulator()
        invoke2, _ = make_invoker(sim2)
        slow = ClosedLoopClient(
            sim=sim2, app=social_media_app(), region="jp", invoke=invoke2,
            metrics=slow_metrics, rng=RandomStreams(1).stream("w"), requests=10,
            think_time_ms=50.0,
        )
        run_clients(sim2, [slow])
        assert sim2.now > t_fast

    def test_client_failure_surfaces(self):
        sim = Simulator()

        def invoke(function_id, args):
            def flow():
                yield sim.timeout(1.0)
                raise RuntimeError("app bug")

            return flow()

        client = ClosedLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=Metrics(), rng=RandomStreams(1).stream("w"), requests=3,
        )
        with pytest.raises(Exception, match="app bug"):
            run_clients(sim, [client])


class TestOpenLoop:
    def test_request_count_tracks_rate(self):
        sim = Simulator()
        metrics = Metrics()
        invoke, calls = make_invoker(sim, latency_ms=5.0)
        client = OpenLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(3).stream("w"),
            rate_rps=100.0, duration_ms=5000.0,
        )
        proc = sim.spawn(client.run())
        sim.run(until_event=proc.done_event)
        # Expect ~500 requests (100 rps for 5 virtual seconds).
        assert 380 <= len(calls) <= 620

    def test_arrivals_do_not_wait_for_responses(self):
        # With a 1000 ms invocation latency and a 100 rps rate, a closed
        # loop could do ~5 requests in 5 s; the open loop keeps emitting.
        sim = Simulator()
        metrics = Metrics()
        invoke, calls = make_invoker(sim, latency_ms=1000.0)
        client = OpenLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(3).stream("w"),
            rate_rps=100.0, duration_ms=5000.0,
        )
        proc = sim.spawn(client.run())
        sim.run(until_event=proc.done_event)
        assert len(calls) > 300

    def test_waits_for_in_flight_before_finishing(self):
        sim = Simulator()
        metrics = Metrics()
        invoke, calls = make_invoker(sim, latency_ms=500.0)
        client = OpenLoopClient(
            sim=sim, app=social_media_app(), region="jp", invoke=invoke,
            metrics=metrics, rng=RandomStreams(3).stream("w"),
            rate_rps=20.0, duration_ms=1000.0,
        )
        proc = sim.spawn(client.run())
        sim.run(until_event=proc.done_event)
        # All issued requests completed and were recorded.
        assert metrics.counter("requests.total") == len(calls)
        assert sim.now >= 1000.0
